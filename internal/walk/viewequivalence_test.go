package walk

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

// churnView kills nodes and drops edges deterministically, returning the
// masked view plus an independently Builder-built copy of the surviving
// topology (not view.Materialize — the reference must not share code with
// the thing under test).
func churnView(t *testing.T, g *graph.Graph, seed int64) (*graph.MaskedView, *graph.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mv := graph.NewMaskedView(g)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if rng.Float64() < 0.15 {
			mv.SetAlive(v, false)
		}
	}
	edges := g.Edges()
	for i := 0; i < len(edges)/20; i++ {
		e := edges[rng.Intn(len(edges))]
		mv.DropEdge(e.U, e.V)
	}
	b := graph.NewBuilder(g.NumNodes())
	mv.VisitEdges(func(e graph.Edge) bool {
		b.AddEdgeSafe(e.U, e.V)
		return true
	})
	return mv, b.Build()
}

// checkMixingIdentical measures both targets and requires bit-identical
// results, including per-source curves.
func checkMixingIdentical(t *testing.T, a, b graph.View, cfg MixingConfig) {
	t.Helper()
	ra, err := MeasureMixing(context.Background(), a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := MeasureMixing(context.Background(), b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Curves) != len(rb.Curves) {
		t.Fatalf("curve counts differ: %d vs %d", len(ra.Curves), len(rb.Curves))
	}
	for i := range ra.Curves {
		for s := range ra.Curves[i] {
			if ra.Curves[i][s] != rb.Curves[i][s] {
				t.Fatalf("curve %d step %d: %v vs %v (must be bit-identical)",
					i, s, ra.Curves[i][s], rb.Curves[i][s])
			}
		}
	}
	for s := range ra.MeanTVD {
		if ra.MeanTVD[s] != rb.MeanTVD[s] || ra.MaxTVD[s] != rb.MaxTVD[s] || ra.MinTVD[s] != rb.MinTVD[s] {
			t.Fatalf("aggregate at step %d diverges", s)
		}
	}
}

// TestEquivalenceViewMixingMasked checks that mixing measured directly on
// a churned MaskedView is bit-identical to mixing on the rebuilt CSR copy
// of the same topology, on both the naive path (small graph) and the
// batched-kernel path (large graph, where the view is materialized once).
func TestEquivalenceViewMixingMasked(t *testing.T) {
	small, err := gen.BarabasiAlbert(400, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	mv, rebuilt := churnView(t, small, 1)
	cfg := MixingConfig{MaxSteps: 12, Sources: 8, Seed: 5, Workers: 8}
	checkMixingIdentical(t, mv, rebuilt, cfg)

	big, err := gen.BarabasiAlbert(5000, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	mvBig, rebuiltBig := churnView(t, big, 2)
	checkMixingIdentical(t, mvBig, rebuiltBig, MixingConfig{MaxSteps: 8, Sources: 16, Seed: 5, Workers: 8})
}

// TestEquivalenceViewMixingInduced does the same for an induced subset.
func TestEquivalenceViewMixingInduced(t *testing.T) {
	g, err := gen.BarabasiAlbert(600, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var nodes []graph.NodeID
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if rng.Float64() < 0.7 {
			nodes = append(nodes, v)
		}
	}
	iv, err := graph.NewInducedView(g, nodes)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := graph.InducedSubgraph(g, nodes)
	checkMixingIdentical(t, iv, rebuilt, MixingConfig{MaxSteps: 10, Sources: 8, Seed: 7, Workers: 8})
}

// TestEquivalenceViewMixingFullyChurned: a view with every node down has
// no edges, and both paths must refuse identically.
func TestEquivalenceViewMixingFullyChurned(t *testing.T) {
	g, err := gen.BarabasiAlbert(100, 3, 14)
	if err != nil {
		t.Fatal(err)
	}
	mv := graph.NewMaskedView(g)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		mv.SetAlive(v, false)
	}
	_, errView := MeasureMixing(context.Background(), mv, MixingConfig{MaxSteps: 4, Sources: 2, Seed: 1})
	_, errRebuilt := MeasureMixing(context.Background(), graph.NewBuilder(g.NumNodes()).Build(),
		MixingConfig{MaxSteps: 4, Sources: 2, Seed: 1})
	if !errors.Is(errView, ErrNoEdges) || !errors.Is(errRebuilt, ErrNoEdges) {
		t.Fatalf("fully churned: view err %v, rebuilt err %v, want both %v", errView, errRebuilt, ErrNoEdges)
	}
}
