package walk_test

import (
	"context"
	"fmt"
	"log"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/walk"
)

// Measure how fast a clique mixes: the walk is within 1% of stationary
// after a handful of steps.
func ExampleMeasureMixing() {
	g, err := gen.Complete(100)
	if err != nil {
		log.Fatal(err)
	}
	res, err := walk.MeasureMixing(context.Background(), g, walk.MixingConfig{
		MaxSteps: 10, Sources: 5, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	t, ok := res.MixingTime(0.01)
	fmt.Println("mixed:", ok, "T(0.01) =", t)
	// Output:
	// mixed: true T(0.01) = 2
}

// The exact distribution evolution behind the measurement.
func ExampleDistribution() {
	g, err := gen.Cycle(5)
	if err != nil {
		log.Fatal(err)
	}
	pi, err := g.StationaryDistribution()
	if err != nil {
		log.Fatal(err)
	}
	d, err := walk.NewDistribution(g, 0, false)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d.Step()
	}
	tvd, err := d.DistanceTo(pi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TVD after 50 steps: %.4f\n", tvd)
	// Output:
	// TVD after 50 steps: 0.0000
}
