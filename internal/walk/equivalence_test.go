package walk

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

// TestEquivalenceMixingWorkerCounts is the determinism contract for the
// mixing measurement: for a fixed seed, MeasureMixing returns a
// bit-for-bit identical MixingResult at every worker count.
func TestEquivalenceMixingWorkerCounts(t *testing.T) {
	g, err := gen.BarabasiAlbert(400, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := MixingConfig{MaxSteps: 25, Sources: 20, Seed: 3}
	run := func(workers int) *MixingResult {
		cfg := base
		cfg.Workers = workers
		r, err := MeasureMixing(context.Background(), g, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: MixingResult differs from workers=1", workers)
		}
	}
}

// TestEquivalenceBlockedMixingWidths is the blocked-kernel contract: for
// a fixed seed, MeasureMixing returns a bit-for-bit identical
// MixingResult at every block width (1 = per-source dense loop) and
// worker count, lazy and plain, including on a bipartite graph where
// only the lazy walk converges.
func TestEquivalenceBlockedMixingWidths(t *testing.T) {
	ba, err := gen.BarabasiAlbert(400, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	cycle, err := gen.Cycle(128) // bipartite
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		g    *graph.Graph
		lazy bool
	}{
		"ba-plain": {ba, false}, "ba-lazy": {ba, true}, "cycle-lazy": {cycle, true},
	} {
		base := MixingConfig{MaxSteps: 20, Sources: 30, Seed: 3, Lazy: tc.lazy, BlockSize: 1}
		run := func(block, workers int) *MixingResult {
			cfg := base
			cfg.BlockSize = block
			cfg.Workers = workers
			r, err := MeasureMixing(context.Background(), tc.g, cfg)
			if err != nil {
				t.Fatalf("%s block=%d workers=%d: %v", name, block, workers, err)
			}
			return r
		}
		want := run(1, 1)
		for _, block := range []int{2, 5, 16, 64} {
			for _, workers := range []int{1, 3, 8} {
				if got := run(block, workers); !reflect.DeepEqual(want, got) {
					t.Errorf("%s: BlockSize=%d workers=%d differs from per-source dense", name, block, workers)
				}
			}
		}
	}
}

// TestEquivalenceSparseStepDense pins the sparse-frontier Step fast path
// to the dense reference scan, bitwise, on a slow-spreading path graph
// (stays sparse for many steps) and a fast-spreading BA graph (crosses
// into dense mode).
func TestEquivalenceSparseStepDense(t *testing.T) {
	path, err := gen.Path(200)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := gen.BarabasiAlbert(300, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for name, g := range map[string]*graph.Graph{"path": path, "ba": ba} {
		for _, lazy := range []bool{false, true} {
			d, err := NewDistribution(g, 0, lazy)
			if err != nil {
				t.Fatal(err)
			}
			ref := newDenseReference(g, 0, lazy)
			for step := 0; step < 60; step++ {
				d.Step()
				ref.step()
				for v, want := range ref.cur {
					if got := d.Probabilities()[v]; got != want {
						t.Fatalf("%s lazy=%v step=%d node=%d: got %x want %x", name, lazy, step, v, got, want)
					}
				}
			}
		}
	}
}

// denseReference replays the pre-kernel unconditional-clear Step so the
// sparse fast path has a frozen reference to diff against.
type denseReference struct {
	g         *graph.Graph
	cur, next []float64
	lazy      bool
}

func newDenseReference(g *graph.Graph, source graph.NodeID, lazy bool) *denseReference {
	r := &denseReference{
		g: g, lazy: lazy,
		cur:  make([]float64, g.NumNodes()),
		next: make([]float64, g.NumNodes()),
	}
	r.cur[source] = 1
	return r
}

func (r *denseReference) step() {
	for i := range r.next {
		r.next[i] = 0
	}
	for v := graph.NodeID(0); int(v) < r.g.NumNodes(); v++ {
		mass := r.cur[v]
		if mass == 0 {
			continue
		}
		ns := r.g.Neighbors(v)
		if len(ns) == 0 {
			r.next[v] += mass
			continue
		}
		if r.lazy {
			r.next[v] += mass / 2
			mass /= 2
		}
		share := mass / float64(len(ns))
		for _, u := range ns {
			r.next[u] += share
		}
	}
	r.cur, r.next = r.next, r.cur
}

// TestEquivalenceMixingRace exercises concurrent curve accumulation under
// the race detector: many sources, more workers than GOMAXPROCS, run a
// few times so goroutine interleavings vary.
func TestEquivalenceMixingRace(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := MeasureMixing(context.Background(), g, MixingConfig{
				MaxSteps: 10, Sources: 50, Seed: 3, Workers: 16,
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
