package walk

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
)

// TestEquivalenceMixingWorkerCounts is the determinism contract for the
// mixing measurement: for a fixed seed, MeasureMixing returns a
// bit-for-bit identical MixingResult at every worker count.
func TestEquivalenceMixingWorkerCounts(t *testing.T) {
	g, err := gen.BarabasiAlbert(400, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	base := MixingConfig{MaxSteps: 25, Sources: 20, Seed: 3}
	run := func(workers int) *MixingResult {
		cfg := base
		cfg.Workers = workers
		r, err := MeasureMixing(context.Background(), g, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r
	}
	want := run(1)
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: MixingResult differs from workers=1", workers)
		}
	}
}

// TestEquivalenceMixingRace exercises concurrent curve accumulation under
// the race detector: many sources, more workers than GOMAXPROCS, run a
// few times so goroutine interleavings vary.
func TestEquivalenceMixingRace(t *testing.T) {
	g, err := gen.BarabasiAlbert(200, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := MeasureMixing(context.Background(), g, MixingConfig{
				MaxSteps: 10, Sources: 50, Seed: 3, Workers: 16,
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
