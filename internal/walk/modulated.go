package walk

import (
	"fmt"
	"math"

	"github.com/trustnet/trustnet/internal/graph"
)

// Strategy selects a modulated random-walk design from Mohaisen et al.
// (INFOCOM 2011), the follow-up the paper cites for incorporating trust
// into mixing-based defenses ("This observation is used in [16] to
// account for trust ... using modulated random walks"). Modulation slows
// mixing by design — the trust/mixing trade-off the measurement suite
// quantifies.
type Strategy int

const (
	// StrategyUniform is the plain simple random walk (Eq. 1).
	StrategyUniform Strategy = iota + 1
	// StrategyLazy stays put with probability Alpha at every step:
	// P' = Alpha·I + (1-Alpha)·P.
	StrategyLazy
	// StrategyOriginatorBiased teleports back to the walk's originator
	// with probability Alpha at every step (personalized-PageRank-style);
	// it models a walker who only partially trusts every hop.
	StrategyOriginatorBiased
	// StrategyInteractionBiased walks proportionally to per-edge trust
	// weights instead of uniformly.
	StrategyInteractionBiased
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case StrategyUniform:
		return "uniform"
	case StrategyLazy:
		return "lazy"
	case StrategyOriginatorBiased:
		return "originator-biased"
	case StrategyInteractionBiased:
		return "interaction-biased"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// EdgeWeight assigns a positive trust weight to the directed use of an
// edge. It is only consulted for adjacent pairs.
type EdgeWeight func(from, to graph.NodeID) float64

// ModulatedConfig parameterizes a modulated distribution.
type ModulatedConfig struct {
	Strategy Strategy
	// Alpha is the modulation parameter for the lazy and
	// originator-biased strategies, in [0, 1).
	Alpha float64
	// Weight supplies trust weights for StrategyInteractionBiased;
	// ignored otherwise. Must be positive for every edge.
	Weight EdgeWeight
}

func (c *ModulatedConfig) validate() error {
	switch c.Strategy {
	case StrategyUniform:
	case StrategyLazy, StrategyOriginatorBiased:
		if c.Alpha < 0 || c.Alpha >= 1 {
			return fmt.Errorf("walk: alpha %v out of [0,1)", c.Alpha)
		}
	case StrategyInteractionBiased:
		if c.Weight == nil {
			return fmt.Errorf("walk: interaction-biased strategy needs a weight function")
		}
	default:
		return fmt.Errorf("walk: unknown strategy %d", c.Strategy)
	}
	return nil
}

// ModulatedDistribution evolves the exact distribution of a modulated
// walk. Like Distribution, it is bound to one graph and one source and
// is not safe for concurrent use.
type ModulatedDistribution struct {
	g      graph.View
	nbr    *graph.Adj
	n      int
	cfg    ModulatedConfig
	origin graph.NodeID
	cur    []float64
	next   []float64
	step   int
	// weightSum[v] caches Σ_u w(v,u) for the interaction-biased walk.
	weightSum []float64
}

// NewModulatedDistribution returns the modulated distribution
// concentrated at source.
func NewModulatedDistribution(g graph.View, source graph.NodeID, cfg ModulatedConfig) (*ModulatedDistribution, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if g.NumEdges() == 0 {
		return nil, ErrNoEdges
	}
	if !g.Valid(source) {
		return nil, fmt.Errorf("walk: source %d out of range", source)
	}
	if g.Degree(source) == 0 {
		return nil, fmt.Errorf("walk: source %d is isolated", source)
	}
	d := &ModulatedDistribution{
		g:      g,
		nbr:    graph.NewAdj(g),
		n:      g.NumNodes(),
		cfg:    cfg,
		origin: source,
		cur:    make([]float64, g.NumNodes()),
		next:   make([]float64, g.NumNodes()),
	}
	d.cur[source] = 1
	if cfg.Strategy == StrategyInteractionBiased {
		d.weightSum = make([]float64, g.NumNodes())
		for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
			for _, u := range d.nbr.Neighbors(v) {
				w := cfg.Weight(v, u)
				if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
					return nil, fmt.Errorf("walk: weight(%d,%d) = %v must be positive and finite", v, u, w)
				}
				d.weightSum[v] += w
			}
		}
	}
	return d, nil
}

// Step advances the modulated distribution by one walk step.
func (d *ModulatedDistribution) Step() {
	for i := range d.next {
		d.next[i] = 0
	}
	alpha := d.cfg.Alpha
	for v := graph.NodeID(0); int(v) < d.n; v++ {
		mass := d.cur[v]
		if mass == 0 {
			continue
		}
		ns := d.nbr.Neighbors(v)
		if len(ns) == 0 {
			d.next[v] += mass
			continue
		}
		switch d.cfg.Strategy {
		case StrategyUniform:
			share := mass / float64(len(ns))
			for _, u := range ns {
				d.next[u] += share
			}
		case StrategyLazy:
			d.next[v] += alpha * mass
			share := (1 - alpha) * mass / float64(len(ns))
			for _, u := range ns {
				d.next[u] += share
			}
		case StrategyOriginatorBiased:
			d.next[d.origin] += alpha * mass
			share := (1 - alpha) * mass / float64(len(ns))
			for _, u := range ns {
				d.next[u] += share
			}
		case StrategyInteractionBiased:
			total := d.weightSum[v]
			for _, u := range ns {
				d.next[u] += mass * d.cfg.Weight(v, u) / total
			}
		}
	}
	d.cur, d.next = d.next, d.cur
	d.step++
}

// StepCount returns the number of steps taken so far.
func (d *ModulatedDistribution) StepCount() int { return d.step }

// Probabilities returns the current distribution. The slice aliases
// internal state and is only valid until the next Step.
func (d *ModulatedDistribution) Probabilities() []float64 { return d.cur }

// DistanceTo returns the total variation distance to target.
func (d *ModulatedDistribution) DistanceTo(target []float64) (float64, error) {
	return TotalVariation(d.cur, target)
}

// WeightedStationary returns the stationary distribution of the
// interaction-biased walk: π(v) ∝ Σ_u w(v,u), which reduces to the
// degree-proportional π when weights are symmetric. The weight function
// must be symmetric for this to be the true stationary distribution.
func WeightedStationary(g graph.View, weight EdgeWeight) ([]float64, error) {
	if g.NumEdges() == 0 {
		return nil, ErrNoEdges
	}
	if weight == nil {
		return nil, fmt.Errorf("walk: nil weight function")
	}
	pi := make([]float64, g.NumNodes())
	total := 0.0
	nbr := graph.NewAdj(g)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, u := range nbr.Neighbors(v) {
			w := weight(v, u)
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("walk: weight(%d,%d) = %v must be positive and finite", v, u, w)
			}
			pi[v] += w
		}
		total += pi[v]
	}
	for v := range pi {
		pi[v] /= total
	}
	return pi, nil
}

// ModulatedMixingCurve evolves the modulated walk from source and returns
// the TVD trajectory against the given target distribution — the
// measurement [16] uses to quantify how much each trust modulation slows
// mixing.
func ModulatedMixingCurve(g graph.View, source graph.NodeID, cfg ModulatedConfig, target []float64, maxSteps int) ([]float64, error) {
	if maxSteps < 1 {
		return nil, fmt.Errorf("walk: maxSteps %d must be >= 1", maxSteps)
	}
	d, err := NewModulatedDistribution(g, source, cfg)
	if err != nil {
		return nil, err
	}
	curve := make([]float64, maxSteps)
	for t := 0; t < maxSteps; t++ {
		d.Step()
		tvd, err := d.DistanceTo(target)
		if err != nil {
			return nil, err
		}
		curve[t] = tvd
	}
	return curve, nil
}
