package walk

import (
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

// TestEquivalenceShardedMixing measures mixing time on a ShardedGraph at
// 1, 2 and 7 shards and requires every curve to be bit-identical to the
// monolithic measurement — on both the blocked-kernel path (which routes
// through kernels.ShardedWalkBlock) and the per-source scalar path.
func TestEquivalenceShardedMixing(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		cfg  MixingConfig
	}{
		// BlockSize > 1 forces the kernel path even on a small graph.
		{"ba-kernel", mustBA(t, 500, 3, 41),
			MixingConfig{MaxSteps: 10, Sources: 12, Seed: 5, Workers: 4, BlockSize: 8}},
		// BlockSize 1 forces the scalar pooled path over the sharded view.
		{"ba-scalar", mustBA(t, 300, 3, 42),
			MixingConfig{MaxSteps: 8, Sources: 6, Seed: 7, Workers: 4, BlockSize: 1}},
		{"clustered-kernel", mustClusteredPA(t, 4, 70, 3, 1, 43),
			MixingConfig{MaxSteps: 9, Sources: 10, Seed: 11, Workers: 3, BlockSize: 4}},
	} {
		for _, shards := range []int{1, 2, 7} {
			sg, err := graph.NewSharded(tc.g, shards)
			if err != nil {
				t.Fatal(err)
			}
			t.Run(tc.name, func(t *testing.T) {
				checkMixingIdentical(t, sg, tc.g, tc.cfg)
			})
		}
	}
}

func mustBA(t *testing.T, n, attach int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(n, attach, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustClusteredPA(t *testing.T, comms, size, attach, bridges int, seed int64) *graph.Graph {
	t.Helper()
	g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: comms, CommunitySize: size, Attach: attach, Bridges: bridges, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}
