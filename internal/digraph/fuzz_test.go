package digraph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadArcList checks that arbitrary input never panics, and that any
// successfully parsed digraph round-trips and symmetrizes consistently.
func FuzzReadArcList(f *testing.F) {
	f.Add("0 1\n1 0\n")
	f.Add("# nodes: 3\n0 1\n")
	f.Add("")
	f.Add("2 2\n")
	f.Add("x y\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadArcList(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteArcList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadArcList(&buf)
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumArcs() != g.NumArcs() {
			t.Fatalf("round trip changed size: %d/%d vs %d/%d",
				g2.NumNodes(), g2.NumArcs(), g.NumNodes(), g.NumArcs())
		}
		union, err := g.Symmetrize(SymmetrizeUnion)
		if err != nil {
			t.Fatalf("union symmetrize: %v", err)
		}
		mutual, err := g.Symmetrize(SymmetrizeMutual)
		if err != nil {
			t.Fatalf("mutual symmetrize: %v", err)
		}
		if mutual.NumEdges() > union.NumEdges() {
			t.Fatalf("mutual edges %d exceed union %d", mutual.NumEdges(), union.NumEdges())
		}
	})
}
