// Package digraph provides the directed-graph substrate behind the
// paper's datasets: Wiki-vote, Epinion, and the Slashdot crawls are
// directed graphs that the paper (like the authors' IMC'10 study)
// symmetrizes before measuring. The package stores directed adjacency in
// CSR form, measures directed degree statistics and reciprocity, and
// converts to the undirected model either by taking every edge (union
// symmetrization) or only mutual edges — the two conventions the
// measurement literature uses, which yield measurably different mixing
// (the authors' companion work, "On the Mixing Time of Directed Social
// Graphs", studies exactly this gap).
package digraph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/trustnet/trustnet/internal/graph"
)

// Digraph is an immutable directed graph in dual-CSR form (out- and
// in-adjacency). The zero value is the empty digraph.
type Digraph struct {
	outOff []int64
	outAdj []graph.NodeID
	inOff  []int64
	inAdj  []graph.NodeID
}

// Arc is a directed edge.
type Arc struct {
	From, To graph.NodeID
}

// NumNodes returns |V|.
func (g *Digraph) NumNodes() int {
	if len(g.outOff) == 0 {
		return 0
	}
	return len(g.outOff) - 1
}

// NumArcs returns the number of directed edges.
func (g *Digraph) NumArcs() int64 { return int64(len(g.outAdj)) }

// OutDegree returns the out-degree of v.
func (g *Digraph) OutDegree(v graph.NodeID) int {
	return int(g.outOff[v+1] - g.outOff[v])
}

// InDegree returns the in-degree of v.
func (g *Digraph) InDegree(v graph.NodeID) int {
	return int(g.inOff[v+1] - g.inOff[v])
}

// Successors returns the sorted out-neighbors of v; the slice aliases
// internal storage.
func (g *Digraph) Successors(v graph.NodeID) []graph.NodeID {
	return g.outAdj[g.outOff[v]:g.outOff[v+1]]
}

// Predecessors returns the sorted in-neighbors of v; the slice aliases
// internal storage.
func (g *Digraph) Predecessors(v graph.NodeID) []graph.NodeID {
	return g.inAdj[g.inOff[v]:g.inOff[v+1]]
}

// HasArc reports whether the directed edge (from, to) exists.
func (g *Digraph) HasArc(from, to graph.NodeID) bool {
	if from < 0 || to < 0 || int(from) >= g.NumNodes() || int(to) >= g.NumNodes() {
		return false
	}
	ns := g.Successors(from)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= to })
	return i < len(ns) && ns[i] == to
}

// Valid reports whether v is a node.
func (g *Digraph) Valid(v graph.NodeID) bool {
	return v >= 0 && int(v) < g.NumNodes()
}

// Reciprocity returns the fraction of arcs whose reverse also exists —
// the quantity that separates "social" directed graphs (high mutuality,
// e.g. Slashdot friendships) from "endorsement" graphs (low mutuality,
// e.g. Wiki-vote).
func (g *Digraph) Reciprocity() float64 {
	if g.NumArcs() == 0 {
		return 0
	}
	mutual := int64(0)
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, u := range g.Successors(v) {
			if g.HasArc(u, v) {
				mutual++
			}
		}
	}
	return float64(mutual) / float64(g.NumArcs())
}

// SymmetrizeMode selects how a directed graph becomes the paper's
// undirected model.
type SymmetrizeMode int

const (
	// SymmetrizeUnion keeps an undirected edge for every arc in either
	// direction — what the paper's Table I datasets use.
	SymmetrizeUnion SymmetrizeMode = iota + 1
	// SymmetrizeMutual keeps only edges with arcs in both directions —
	// the strict-trust variant.
	SymmetrizeMutual
)

// Symmetrize converts to the undirected simple graph model of
// internal/graph under the given mode.
func (g *Digraph) Symmetrize(mode SymmetrizeMode) (*graph.Graph, error) {
	n := g.NumNodes()
	b := graph.NewBuilder(n)
	switch mode {
	case SymmetrizeUnion:
		for v := graph.NodeID(0); int(v) < n; v++ {
			for _, u := range g.Successors(v) {
				b.AddEdgeSafe(v, u)
			}
		}
	case SymmetrizeMutual:
		for v := graph.NodeID(0); int(v) < n; v++ {
			for _, u := range g.Successors(v) {
				if v < u && g.HasArc(u, v) {
					b.AddEdgeSafe(v, u)
				}
			}
		}
	default:
		return nil, fmt.Errorf("digraph: unknown symmetrize mode %d", mode)
	}
	return b.Build(), nil
}

// Builder accumulates arcs. Create with NewBuilder.
type Builder struct {
	n    int
	arcs []Arc
}

// NewBuilder returns a builder over nodes {0..n-1}.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddArc records the directed edge (from, to). Self loops are rejected;
// duplicates merge at Build.
func (b *Builder) AddArc(from, to graph.NodeID) error {
	if from == to {
		return fmt.Errorf("%w: (%d,%d)", graph.ErrSelfLoop, from, to)
	}
	if from < 0 || to < 0 || int(from) >= b.n || int(to) >= b.n {
		return fmt.Errorf("%w: (%d,%d) with n=%d", graph.ErrNodeRange, from, to, b.n)
	}
	b.arcs = append(b.arcs, Arc{From: from, To: to})
	return nil
}

// Build produces the immutable digraph.
func (b *Builder) Build() *Digraph {
	arcs := make([]Arc, len(b.arcs))
	copy(arcs, b.arcs)
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].From != arcs[j].From {
			return arcs[i].From < arcs[j].From
		}
		return arcs[i].To < arcs[j].To
	})
	uniq := arcs[:0]
	for i, a := range arcs {
		if i == 0 || a != arcs[i-1] {
			uniq = append(uniq, a)
		}
	}
	g := &Digraph{
		outOff: make([]int64, b.n+1),
		inOff:  make([]int64, b.n+1),
		outAdj: make([]graph.NodeID, len(uniq)),
		inAdj:  make([]graph.NodeID, len(uniq)),
	}
	outDeg := make([]int64, b.n)
	inDeg := make([]int64, b.n)
	for _, a := range uniq {
		outDeg[a.From]++
		inDeg[a.To]++
	}
	for v := 0; v < b.n; v++ {
		g.outOff[v+1] = g.outOff[v] + outDeg[v]
		g.inOff[v+1] = g.inOff[v] + inDeg[v]
	}
	outCur := make([]int64, b.n)
	inCur := make([]int64, b.n)
	copy(outCur, g.outOff[:b.n])
	copy(inCur, g.inOff[:b.n])
	for _, a := range uniq {
		g.outAdj[outCur[a.From]] = a.To
		outCur[a.From]++
		g.inAdj[inCur[a.To]] = a.From
		inCur[a.To]++
	}
	// Sort each in-adjacency list (out lists are sorted by construction).
	for v := 0; v < b.n; v++ {
		in := g.inAdj[g.inOff[v]:g.inOff[v+1]]
		sort.Slice(in, func(i, j int) bool { return in[i] < in[j] })
	}
	return g
}

// ReadArcList parses the same whitespace edge-list format as
// graph.ReadEdgeList, but keeps direction. Self loops are dropped.
func ReadArcList(r io.Reader) (*Digraph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var arcs []Arc
	declared := -1
	maxID := graph.NodeID(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '#' || line[0] == '%' {
			if rest, ok := strings.CutPrefix(line, "# nodes:"); ok {
				if n, err := strconv.Atoi(strings.TrimSpace(rest)); err == nil && n >= 0 {
					declared = n
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("arc list line %d: want 2 fields, got %q", lineNo, line)
		}
		from, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("arc list line %d: %w", lineNo, err)
		}
		to, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("arc list line %d: %w", lineNo, err)
		}
		if from < 0 || to < 0 {
			return nil, fmt.Errorf("arc list line %d: negative node id", lineNo)
		}
		if from == to {
			continue
		}
		a := Arc{From: graph.NodeID(from), To: graph.NodeID(to)}
		if a.From > maxID {
			maxID = a.From
		}
		if a.To > maxID {
			maxID = a.To
		}
		arcs = append(arcs, a)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scan arc list: %w", err)
	}
	n := int(maxID) + 1
	if declared > n {
		n = declared
	}
	if n == 0 {
		return nil, errors.New("digraph: empty arc list")
	}
	b := NewBuilder(n)
	for _, a := range arcs {
		if err := b.AddArc(a.From, a.To); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// WriteArcList writes the digraph one arc per line with a size header.
func WriteArcList(w io.Writer, g *Digraph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes: %d\n# arcs: %d\n", g.NumNodes(), g.NumArcs()); err != nil {
		return fmt.Errorf("write arc list header: %w", err)
	}
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, u := range g.Successors(v) {
			bw.WriteString(strconv.Itoa(int(v)))
			bw.WriteByte(' ')
			bw.WriteString(strconv.Itoa(int(u)))
			bw.WriteByte('\n')
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("flush arc list: %w", err)
	}
	return nil
}
