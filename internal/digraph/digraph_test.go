package digraph

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/trustnet/trustnet/internal/graph"
)

// triangleCycle returns the directed 3-cycle 0->1->2->0.
func triangleCycle(t *testing.T) *Digraph {
	t.Helper()
	b := NewBuilder(3)
	for _, a := range []Arc{{0, 1}, {1, 2}, {2, 0}} {
		if err := b.AddArc(a.From, a.To); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := triangleCycle(t)
	if g.NumNodes() != 3 || g.NumArcs() != 3 {
		t.Fatalf("size = %d/%d", g.NumNodes(), g.NumArcs())
	}
	for v := graph.NodeID(0); v < 3; v++ {
		if g.OutDegree(v) != 1 || g.InDegree(v) != 1 {
			t.Errorf("degrees of %d = %d/%d, want 1/1", v, g.OutDegree(v), g.InDegree(v))
		}
	}
	if !g.HasArc(0, 1) || g.HasArc(1, 0) {
		t.Error("arc direction wrong")
	}
	if !g.Valid(2) || g.Valid(3) || g.Valid(-1) {
		t.Error("Valid wrong")
	}
	if g.HasArc(-1, 0) || g.HasArc(0, 99) {
		t.Error("HasArc out of range should be false")
	}
}

func TestBuilderRejects(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddArc(1, 1); !errors.Is(err, graph.ErrSelfLoop) {
		t.Errorf("self loop: %v", err)
	}
	if err := b.AddArc(0, 5); !errors.Is(err, graph.ErrNodeRange) {
		t.Errorf("range: %v", err)
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(2)
	for i := 0; i < 4; i++ {
		if err := b.AddArc(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.NumArcs() != 1 {
		t.Errorf("arcs = %d, want 1", g.NumArcs())
	}
}

func TestReciprocity(t *testing.T) {
	// Cycle: no mutual arcs.
	if r := triangleCycle(t).Reciprocity(); r != 0 {
		t.Errorf("cycle reciprocity = %v, want 0", r)
	}
	// Fully mutual pair.
	b := NewBuilder(2)
	if err := b.AddArc(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddArc(1, 0); err != nil {
		t.Fatal(err)
	}
	if r := b.Build().Reciprocity(); r != 1 {
		t.Errorf("mutual reciprocity = %v, want 1", r)
	}
	// Mixed: 0<->1 mutual plus 0->2: 2 of 3 arcs reciprocated.
	b = NewBuilder(3)
	for _, a := range []Arc{{0, 1}, {1, 0}, {0, 2}} {
		if err := b.AddArc(a.From, a.To); err != nil {
			t.Fatal(err)
		}
	}
	if r := b.Build().Reciprocity(); math.Abs(r-2.0/3) > 1e-12 {
		t.Errorf("mixed reciprocity = %v, want 2/3", r)
	}
	var empty Digraph
	if empty.Reciprocity() != 0 {
		t.Error("empty reciprocity should be 0")
	}
}

func TestSymmetrizeUnionVsMutual(t *testing.T) {
	b := NewBuilder(4)
	// 0<->1 mutual; 1->2 and 2->3 one-way.
	for _, a := range []Arc{{0, 1}, {1, 0}, {1, 2}, {2, 3}} {
		if err := b.AddArc(a.From, a.To); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	union, err := g.Symmetrize(SymmetrizeUnion)
	if err != nil {
		t.Fatal(err)
	}
	if union.NumEdges() != 3 {
		t.Errorf("union edges = %d, want 3", union.NumEdges())
	}
	mutual, err := g.Symmetrize(SymmetrizeMutual)
	if err != nil {
		t.Fatal(err)
	}
	if mutual.NumEdges() != 1 {
		t.Errorf("mutual edges = %d, want 1", mutual.NumEdges())
	}
	if !mutual.HasEdge(0, 1) {
		t.Error("mutual symmetrization lost the reciprocated edge")
	}
	if _, err := g.Symmetrize(99); err == nil {
		t.Error("Symmetrize(99): want error")
	}
}

func TestArcListRoundTrip(t *testing.T) {
	g := triangleCycle(t)
	var buf bytes.Buffer
	if err := WriteArcList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadArcList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 3 || g2.NumArcs() != 3 {
		t.Fatalf("round trip size = %d/%d", g2.NumNodes(), g2.NumArcs())
	}
	for _, a := range []Arc{{0, 1}, {1, 2}, {2, 0}} {
		if !g2.HasArc(a.From, a.To) {
			t.Errorf("arc %v lost", a)
		}
	}
}

func TestReadArcListFormats(t *testing.T) {
	in := "# nodes: 5\n% comment\n0 1\n1 1\n2 0\n"
	g, err := ReadArcList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 {
		t.Errorf("nodes = %d, want 5 from header", g.NumNodes())
	}
	if g.NumArcs() != 2 { // self loop dropped
		t.Errorf("arcs = %d, want 2", g.NumArcs())
	}
	for _, bad := range []string{"0\n", "a b\n", "-1 2\n", "0 x\n", ""} {
		if _, err := ReadArcList(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadArcList(%q): want error", bad)
		}
	}
}

// Property: union symmetrization has between max(arcs/2-ish) edges and
// arcs edges, and mutual+nonmutual accounting is consistent with
// reciprocity.
func TestSymmetrizeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		b := NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if u != v {
				if err := b.AddArc(u, v); err != nil {
					return false
				}
			}
		}
		g := b.Build()
		union, err := g.Symmetrize(SymmetrizeUnion)
		if err != nil {
			return false
		}
		mutual, err := g.Symmetrize(SymmetrizeMutual)
		if err != nil {
			return false
		}
		// mutual edges = reciprocity*arcs/2; union = arcs - mutual.
		mutualEdges := int64(g.Reciprocity()*float64(g.NumArcs()) + 0.5)
		if 2*mutual.NumEdges() != mutualEdges {
			return false
		}
		if union.NumEdges() != g.NumArcs()-mutual.NumEdges() {
			return false
		}
		return mutual.NumEdges() <= union.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPredecessorsSorted(t *testing.T) {
	b := NewBuilder(5)
	for _, a := range []Arc{{4, 0}, {2, 0}, {3, 0}, {1, 0}} {
		if err := b.AddArc(a.From, a.To); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	preds := g.Predecessors(0)
	want := []graph.NodeID{1, 2, 3, 4}
	if len(preds) != 4 {
		t.Fatalf("preds = %v", preds)
	}
	for i := range want {
		if preds[i] != want[i] {
			t.Errorf("preds[%d] = %d, want %d", i, preds[i], want[i])
		}
	}
	if len(g.Successors(0)) != 0 {
		t.Errorf("Successors(0) = %v, want empty", g.Successors(0))
	}
}
