package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	cases := []struct {
		requested, items, want int
	}{
		{0, 100, runtime.GOMAXPROCS(0)},
		{-3, 100, runtime.GOMAXPROCS(0)},
		{4, 100, 4},
		{8, 3, 3},
		{5, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.items); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.items, got, c.want)
		}
	}
}

func TestForEachVisitsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		const n = 100
		var visits [n]int32
		err := ForEach(context.Background(), workers, n, func(_, i int) error {
			atomic.AddInt32(&visits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestForEachSlotAssignmentIsStrided(t *testing.T) {
	const n, workers = 20, 4
	slots := make([]int32, n)
	err := ForEach(context.Background(), workers, n, func(slot, i int) error {
		atomic.StoreInt32(&slots[i], int32(slot))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range slots {
		if int(s) != i%workers {
			t.Errorf("item %d ran on slot %d, want %d", i, s, i%workers)
		}
	}
}

func TestForEachReturnsSmallestIndexError(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		err := ForEach(context.Background(), workers, 50, func(_, i int) error {
			if i >= 10 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 10 failed" {
			t.Errorf("workers=%d: err = %v, want item 10 failed", workers, err)
		}
	}
}

func TestForEachHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done int32
	err := ForEach(ctx, 4, 1000, func(_, i int) error {
		if atomic.AddInt32(&done, 1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := atomic.LoadInt32(&done); n >= 1000 {
		t.Errorf("all %d items ran despite cancellation", n)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(_, i int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestEquivalenceMapWorkerCounts is the package-level determinism
// contract: Map output is identical at every worker count.
func TestEquivalenceMapWorkerCounts(t *testing.T) {
	run := func(workers int) []int64 {
		out, err := Map(context.Background(), workers, 64, func(_, i int) (int64, error) {
			return SeedFor(42, i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 4, 8, 64} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	out, err := Map(context.Background(), 4, 10, func(_, i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if out != nil {
		t.Errorf("out = %v, want nil on error", out)
	}
}

func TestSeedForDecorrelated(t *testing.T) {
	// Distinct (root, i) pairs must give distinct seeds, including the
	// (root+1, i) vs (root, i+1) collisions of the additive scheme.
	seen := make(map[int64][2]int64)
	for root := int64(0); root < 64; root++ {
		for i := 0; i < 64; i++ {
			s := SeedFor(root, i)
			if prev, ok := seen[s]; ok {
				t.Fatalf("SeedFor(%d,%d) collides with SeedFor(%d,%d)", root, i, prev[0], prev[1])
			}
			seen[s] = [2]int64{root, int64(i)}
		}
	}
	if SeedFor(7, 3) != SeedFor(7, 3) {
		t.Error("SeedFor is not a pure function")
	}
}

// TestForEachRaceShardedAccumulation exercises the sharded-accumulator
// pattern the measurement packages use, so the -race job covers the
// merge protocol: per-slot shards written without locks, merged after.
func TestForEachRaceShardedAccumulation(t *testing.T) {
	const n, workers = 2048, 8
	shards := make([]int64, Workers(workers, n))
	err := ForEach(context.Background(), workers, n, func(slot, i int) error {
		shards[slot] += int64(i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range shards {
		total += s
	}
	if want := int64(n) * (n - 1) / 2; total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

func TestBlocksPartition(t *testing.T) {
	cases := []struct {
		n, size int
		want    []Block
	}{
		{0, 4, nil},
		{-2, 4, nil},
		{5, 2, []Block{{0, 2}, {2, 4}, {4, 5}}},
		{4, 4, []Block{{0, 4}}},
		{4, 99, []Block{{0, 4}}},
		{3, 0, []Block{{0, 1}, {1, 2}, {2, 3}}}, // size <= 0 behaves as 1
	}
	for _, c := range cases {
		got := Blocks(c.n, c.size)
		if len(got) != len(c.want) {
			t.Errorf("Blocks(%d, %d) = %v, want %v", c.n, c.size, got, c.want)
			continue
		}
		covered := 0
		for i, b := range got {
			if b != c.want[i] {
				t.Errorf("Blocks(%d, %d)[%d] = %v, want %v", c.n, c.size, i, b, c.want[i])
			}
			covered += b.Len()
		}
		if c.n > 0 && covered != c.n {
			t.Errorf("Blocks(%d, %d) covers %d items", c.n, c.size, covered)
		}
	}
}
