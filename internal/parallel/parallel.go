// Package parallel is the shared worker-pool fan-out used by every
// embarrassingly parallel measurement in the repository: the per-source
// mixing curves of Eq. 2 (internal/walk), the per-core BFS expansion
// envelopes of Eq. 4 (internal/expansion), the row-partitioned power
// iteration behind the SLEM bound (internal/spectral), and the per-pivot
// Brandes accumulation (internal/centrality).
//
// The package enforces one determinism contract for all of them:
//
//   - Work is identified by item index, not by goroutine. ForEach and Map
//     assign item i to worker slot i%workers, so the set of items a slot
//     processes is a pure function of (n, workers) — never of scheduling.
//   - Per-item randomness must be seeded with SeedFor(root, i), a
//     SplitMix64 mix of the caller's root seed and the item index, so a
//     measurement produces bit-for-bit identical results at any worker
//     count, including workers=1.
//   - When several items fail, the error of the smallest failing index is
//     returned, so error reporting is deterministic too.
//
// Cost model: ForEach/Map spawn min(workers, n) goroutines once per call
// — O(workers) scheduling overhead amortized over n items. They add no
// synchronization on the hot path beyond the final WaitGroup join, so a
// fan-out over n independent items of cost C runs in O(n·C/workers) wall
// clock plus O(workers) constant overhead.
package parallel

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
)

// workerLabels caches the pprof label values for small slot indices so
// labeling a fan-out does not allocate per worker on the common path.
var workerLabels = func() [64]string {
	var ls [64]string
	for i := range ls {
		ls[i] = strconv.Itoa(i)
	}
	return ls
}()

// workerLabel returns the string form of a worker slot index.
func workerLabel(slot int) string {
	if slot < len(workerLabels) {
		return workerLabels[slot]
	}
	return strconv.Itoa(slot)
}

// Workers normalizes a requested worker count: values <= 0 become
// GOMAXPROCS, and the result is capped at items (never below 1) so callers
// can size per-slot accumulators without empty shards.
func Workers(requested, items int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(slot, i) for every i in [0, n) across at most workers
// goroutines (normalized by Workers). Item i is handled by slot i%workers,
// so slot assignment is deterministic; fn receives its slot index so
// callers can keep lock-free per-worker scratch and sharded accumulators.
//
// Cancellation is checked between items: once ctx is done, every slot
// stops before its next item and ForEach returns ctx.Err(). When fn
// returns an error the slot stops, the other slots finish their remaining
// items, and the error with the smallest item index is returned.
func ForEach(ctx context.Context, workers, n int, fn func(slot, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		// Run inline: keeps single-worker stacks shallow and makes the
		// sequential path trivially identical to the parallel one. The
		// calling goroutine's pprof labels (experiment, stage) already
		// apply; re-labeling here would cost an allocation per call on
		// per-iteration fan-outs like the spectral mat-vec.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	type failure struct {
		index int
		err   error
	}
	fails := make([]failure, workers)
	for s := range fails {
		fails[s].index = -1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			// Each worker task carries a "worker" pprof label merged
			// with whatever the caller's context already carries (the
			// "experiment" and "stage" labels from obs.WithExperiment /
			// obs.StartSpan), so CPU profiles attribute every sample to
			// the (experiment, stage, worker) triple. One label set per
			// spawned goroutine — amortized over the slot's whole strided
			// item range, never per item.
			pprof.Do(ctx, pprof.Labels("worker", workerLabel(slot)), func(ctx context.Context) {
				for i := slot; i < n; i += workers {
					if err := ctx.Err(); err != nil {
						fails[slot] = failure{index: i, err: err}
						return
					}
					if err := fn(slot, i); err != nil {
						fails[slot] = failure{index: i, err: err}
						return
					}
				}
			})
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	first := failure{index: -1}
	for _, f := range fails {
		if f.index >= 0 && (first.index < 0 || f.index < first.index) {
			first = f
		}
	}
	if first.index >= 0 {
		return first.err
	}
	return nil
}

// Map runs fn(slot, i) for every i in [0, n) under the same scheduling and
// error contract as ForEach and returns the results in item order. Because
// out[i] depends only on fn(·, i), the returned slice is bit-for-bit
// identical at any worker count; callers that fold it sequentially inherit
// that determinism for free.
func Map[T any](ctx context.Context, workers, n int, fn func(slot, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(slot, i int) error {
		v, err := fn(slot, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Block is one contiguous item range [Start, End) produced by Blocks.
type Block struct {
	Start, End int
}

// Len returns the number of items in the block.
func (b Block) Len() int { return b.End - b.Start }

// Blocks partitions the items [0, n) into consecutive blocks of at most
// size items each (the last block may be shorter). It is the batch
// partitioner for kernels that amortize one shared scan across a block
// of items (blocked walk propagation, bit-parallel BFS): fanning the
// blocks out with ForEach/Map keeps the determinism contract, because
// the block boundaries depend only on (n, size) and every item stays in
// item order within its block. size <= 0 is treated as 1.
func Blocks(n, size int) []Block {
	if n <= 0 {
		return nil
	}
	if size < 1 {
		size = 1
	}
	out := make([]Block, 0, (n+size-1)/size)
	for start := 0; start < n; start += size {
		end := start + size
		if end > n {
			end = n
		}
		out = append(out, Block{Start: start, End: end})
	}
	return out
}

// SeedFor derives the seed for item i from a root seed with a SplitMix64
// mix. It is the canonical per-item stream derivation of the determinism
// contract: streams are decorrelated even for adjacent roots or indices
// (unlike the additive root+i scheme, whose streams overlap shifted by
// one), and the result depends only on (root, i), never on worker count
// or scheduling order.
func SeedFor(root int64, i int) int64 {
	z := uint64(root) + uint64(i)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
