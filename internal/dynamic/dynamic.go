// Package dynamic addresses the paper's closing open problem —
// "investigate the expansion and mixing characteristics of dynamic social
// graphs" (§VI) — with a growth simulator that emits nested snapshots of
// an evolving social network and a tracker that measures the paper's
// properties (SLEM, mixing, expansion, core structure) on every snapshot.
//
// Growth follows preferential attachment with optional densification
// (Leskovec et al.'s "graphs over time" observation, reference [8] of
// the paper): besides each new node's edges, every arrival step adds
// extra edges between existing nodes with degree-proportional endpoints,
// so the average degree grows as the network ages.
package dynamic

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"github.com/trustnet/trustnet/internal/expansion"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/kcore"
	"github.com/trustnet/trustnet/internal/spectral"
	"github.com/trustnet/trustnet/internal/walk"
)

// GrowthConfig parameterizes the evolution.
type GrowthConfig struct {
	// FinalNodes is the size of the final snapshot.
	FinalNodes int
	// Attach is the number of edges each arriving node creates.
	Attach int
	// DensifyEvery adds one extra edge between existing nodes every this
	// many arrivals (0 disables densification).
	DensifyEvery int
	// Snapshots lists the node counts at which to emit snapshots, in
	// increasing order; each must be > Attach and <= FinalNodes.
	Snapshots []int
	// Seed makes the evolution deterministic.
	Seed int64
}

func (c *GrowthConfig) validate() error {
	if c.Attach < 1 {
		return fmt.Errorf("dynamic: attach %d must be >= 1", c.Attach)
	}
	if c.FinalNodes <= c.Attach+1 {
		return fmt.Errorf("dynamic: final size %d must exceed attach+1", c.FinalNodes)
	}
	if c.DensifyEvery < 0 {
		return fmt.Errorf("dynamic: densify interval %d must be >= 0", c.DensifyEvery)
	}
	if len(c.Snapshots) == 0 {
		return fmt.Errorf("dynamic: need at least one snapshot size")
	}
	prev := c.Attach + 1
	for _, s := range c.Snapshots {
		if s <= prev-1 && s != prev {
			return fmt.Errorf("dynamic: snapshot sizes must be increasing and > attach, got %v", c.Snapshots)
		}
		if s < prev {
			return fmt.Errorf("dynamic: snapshot sizes must be increasing, got %v", c.Snapshots)
		}
		if s > c.FinalNodes {
			return fmt.Errorf("dynamic: snapshot %d exceeds final size %d", s, c.FinalNodes)
		}
		prev = s + 1
	}
	return nil
}

// Snapshot is the graph after growth reached a given node count. Graph is
// a zero-copy graph.PrefixView into one shared graph.GrowthLog — emitting
// k snapshots costs one CSR build for the final graph, not k.
type Snapshot struct {
	Nodes int
	Graph graph.View
}

// Grow runs the evolution and returns one Snapshot per requested size.
// Snapshots are nested: every edge of an earlier snapshot exists in every
// later one. All snapshots are prefix views of a single growth log built
// over the full arrival sequence.
func Grow(cfg GrowthConfig) ([]Snapshot, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var edges []graph.Edge
	// repeated holds one entry per half-edge for degree-proportional
	// sampling, as in gen.BarabasiAlbert.
	var repeated []graph.NodeID
	addEdge := func(u, v graph.NodeID) {
		edges = append(edges, graph.Edge{U: u, V: v})
		repeated = append(repeated, u, v)
	}
	seedSize := cfg.Attach + 1
	for i := 0; i < seedSize; i++ {
		for j := i + 1; j < seedSize; j++ {
			addEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	// A snapshot is (node count, arrival count at emit time); the views
	// themselves are cut after the whole sequence is logged.
	type cut struct{ nodes, arrivals int }
	cuts := make([]cut, 0, len(cfg.Snapshots))
	nextSnap := 0
	targets := make(map[graph.NodeID]struct{}, cfg.Attach)
	for nextSnap < len(cfg.Snapshots) && cfg.Snapshots[nextSnap] <= seedSize {
		cuts = append(cuts, cut{nodes: cfg.Snapshots[nextSnap], arrivals: len(edges)})
		nextSnap++
	}
	ordered := make([]graph.NodeID, 0, cfg.Attach)
	for v := seedSize; v < cfg.FinalNodes; v++ {
		clear(targets)
		for len(targets) < cfg.Attach {
			targets[repeated[rng.Intn(len(repeated))]] = struct{}{}
		}
		// Sorted drain keeps the repeated-slice order — and therefore
		// the whole evolution — deterministic (map iteration is not).
		ordered = ordered[:0]
		for u := range targets {
			ordered = append(ordered, u)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
		for _, u := range ordered {
			addEdge(graph.NodeID(v), u)
		}
		if cfg.DensifyEvery > 0 && (v-seedSize+1)%cfg.DensifyEvery == 0 {
			// Densification: one degree-proportional edge among existing
			// nodes (self loops guarded here, duplicates deduplicated by
			// the growth log's first-arrival rule).
			a := repeated[rng.Intn(len(repeated))]
			b := repeated[rng.Intn(len(repeated))]
			if a != b {
				addEdge(a, b)
			}
		}
		if nextSnap < len(cfg.Snapshots) && v+1 == cfg.Snapshots[nextSnap] {
			cuts = append(cuts, cut{nodes: v + 1, arrivals: len(edges)})
			nextSnap++
		}
	}
	log, err := graph.NewGrowthLog(cfg.FinalNodes, edges)
	if err != nil {
		return nil, fmt.Errorf("dynamic: growth log: %w", err)
	}
	snapshots := make([]Snapshot, 0, len(cuts))
	for _, c := range cuts {
		pv, err := log.Prefix(c.arrivals, c.nodes)
		if err != nil {
			return nil, fmt.Errorf("dynamic: snapshot at n=%d: %w", c.nodes, err)
		}
		snapshots = append(snapshots, Snapshot{Nodes: c.nodes, Graph: pv})
	}
	return snapshots, nil
}

// TrackConfig tunes the per-snapshot measurement.
type TrackConfig struct {
	// Epsilon is the mixing target; defaults to 0.1 (curve-comparison
	// scale, as in Figure 1).
	Epsilon float64
	// MixingSources and MixingMaxSteps mirror walk.MixingConfig.
	MixingSources  int
	MixingMaxSteps int
	// ExpansionSources samples BFS cores (0 = all nodes).
	ExpansionSources int
	// Seed drives the randomized measurements.
	Seed int64
	// Workers bounds parallelism.
	Workers int
}

func (c *TrackConfig) fill() {
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	if c.MixingSources == 0 {
		c.MixingSources = 20
	}
	if c.MixingMaxSteps == 0 {
		c.MixingMaxSteps = 100
	}
}

// TrackPoint is the measured state of one snapshot.
type TrackPoint struct {
	Nodes int
	Edges int64
	// AverageDegree tracks densification.
	AverageDegree float64
	// SLEM is μ of the snapshot.
	SLEM float64
	// MixingTime is T(Epsilon) by the sampling method; 0 when not
	// reached within the budget (see Mixed).
	MixingTime int
	Mixed      bool
	// MinAlpha is the sampled vertex-expansion analogue.
	MinAlpha float64
	// Degeneracy tracks core deepening over time.
	Degeneracy int
}

// Track measures every snapshot. Disconnected snapshots are reduced to
// their largest component first (early PA snapshots are connected by
// construction; densified variants may briefly not be).
func Track(ctx context.Context, snaps []Snapshot, cfg TrackConfig) ([]TrackPoint, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("dynamic: no snapshots to track")
	}
	cfg.fill()
	out := make([]TrackPoint, 0, len(snaps))
	for _, snap := range snaps {
		g := snap.Graph
		if !graph.IsConnected(g) {
			lcv, _ := graph.LargestComponentView(g)
			g = lcv
		}
		pt := TrackPoint{
			Nodes:         g.NumNodes(),
			Edges:         g.NumEdges(),
			AverageDegree: graph.AvgDegree(g),
		}
		sr, err := spectral.SLEM(g, spectral.Config{Tolerance: 1e-6, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("dynamic: slem at n=%d: %w", snap.Nodes, err)
		}
		pt.SLEM = sr.SLEM

		mr, err := walk.MeasureMixing(ctx, g, walk.MixingConfig{
			MaxSteps: cfg.MixingMaxSteps,
			Sources:  cfg.MixingSources,
			Seed:     cfg.Seed,
			Workers:  cfg.Workers,
		})
		if err != nil {
			return nil, fmt.Errorf("dynamic: mixing at n=%d: %w", snap.Nodes, err)
		}
		pt.MixingTime, pt.Mixed = mr.MixingTime(cfg.Epsilon)

		ecfg := expansion.Config{Workers: cfg.Workers}
		if cfg.ExpansionSources > 0 {
			srcs, err := expansion.SampledSources(g, cfg.ExpansionSources, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("dynamic: expansion sources at n=%d: %w", snap.Nodes, err)
			}
			ecfg.Sources = srcs
		}
		er, err := expansion.Measure(ctx, g, ecfg)
		if err != nil {
			return nil, fmt.Errorf("dynamic: expansion at n=%d: %w", snap.Nodes, err)
		}
		if a, ok := er.VertexExpansion(g.NumNodes()); ok {
			pt.MinAlpha = a
		}

		dec, err := kcore.Decompose(g)
		if err != nil {
			return nil, fmt.Errorf("dynamic: cores at n=%d: %w", snap.Nodes, err)
		}
		pt.Degeneracy = dec.Degeneracy()
		out = append(out, pt)
	}
	return out, nil
}
