package dynamic

import (
	"context"
	"testing"

	"github.com/trustnet/trustnet/internal/graph"
)

func grow(t *testing.T, cfg GrowthConfig) []Snapshot {
	t.Helper()
	snaps, err := Grow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return snaps
}

func TestGrowSnapshotsNested(t *testing.T) {
	snaps := grow(t, GrowthConfig{
		FinalNodes: 400, Attach: 3, Snapshots: []int{100, 200, 400}, Seed: 1,
	})
	if len(snaps) != 3 {
		t.Fatalf("snapshots = %d, want 3", len(snaps))
	}
	for i, s := range snaps {
		if s.Graph.NumNodes() != s.Nodes {
			t.Errorf("snapshot %d: graph has %d nodes, header says %d", i, s.Graph.NumNodes(), s.Nodes)
		}
		if !graph.IsConnected(s.Graph) {
			t.Errorf("snapshot %d not connected", i)
		}
	}
	// Nesting: every edge of snapshot i is in snapshot i+1.
	for i := 0; i+1 < len(snaps); i++ {
		next := graph.Materialize(snaps[i+1].Graph)
		snaps[i].Graph.VisitEdges(func(e graph.Edge) bool {
			if !next.HasEdge(e.U, e.V) {
				t.Fatalf("edge %v of snapshot %d missing from snapshot %d", e, i, i+1)
			}
			return true
		})
	}
}

func TestGrowDensification(t *testing.T) {
	plain := grow(t, GrowthConfig{
		FinalNodes: 600, Attach: 3, Snapshots: []int{150, 600}, Seed: 2,
	})
	dense := grow(t, GrowthConfig{
		FinalNodes: 600, Attach: 3, DensifyEvery: 2, Snapshots: []int{150, 600}, Seed: 2,
	})
	// Densified growth must raise average degree over time relative to
	// plain PA (which keeps it ~2·attach).
	plainDeg := graph.AvgDegree(plain[1].Graph)
	denseDeg := graph.AvgDegree(dense[1].Graph)
	if denseDeg <= plainDeg {
		t.Errorf("densified avg degree %v <= plain %v", denseDeg, plainDeg)
	}
	// And the densified graph ages denser: later snapshot denser than
	// earlier one.
	if graph.AvgDegree(dense[1].Graph) <= graph.AvgDegree(dense[0].Graph) {
		t.Errorf("densified graph did not densify: %v -> %v",
			graph.AvgDegree(dense[0].Graph), graph.AvgDegree(dense[1].Graph))
	}
}

func TestGrowValidation(t *testing.T) {
	bad := []GrowthConfig{
		{FinalNodes: 100, Attach: 0, Snapshots: []int{50}},
		{FinalNodes: 3, Attach: 3, Snapshots: []int{3}},
		{FinalNodes: 100, Attach: 3, Snapshots: nil},
		{FinalNodes: 100, Attach: 3, Snapshots: []int{50, 40}},
		{FinalNodes: 100, Attach: 3, Snapshots: []int{150}},
		{FinalNodes: 100, Attach: 3, DensifyEvery: -1, Snapshots: []int{50}},
	}
	for _, cfg := range bad {
		if _, err := Grow(cfg); err == nil {
			t.Errorf("Grow(%+v): want error", cfg)
		}
	}
}

func TestGrowDeterministic(t *testing.T) {
	a := grow(t, GrowthConfig{FinalNodes: 200, Attach: 2, Snapshots: []int{200}, Seed: 9})
	b := grow(t, GrowthConfig{FinalNodes: 200, Attach: 2, Snapshots: []int{200}, Seed: 9})
	ea := graph.Materialize(a[0].Graph).Edges()
	eb := graph.Materialize(b[0].Graph).Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestTrackStablePropertiesUnderGrowth(t *testing.T) {
	// The open-problem measurement: PA growth keeps the graph fast-mixing
	// and well-expanding at every age — the properties are stable under
	// this evolution model.
	snaps := grow(t, GrowthConfig{
		FinalNodes: 800, Attach: 4, Snapshots: []int{100, 200, 400, 800}, Seed: 3,
	})
	points, err := Track(context.Background(), snaps, TrackConfig{
		Seed: 1, ExpansionSources: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	for i, p := range points {
		if !p.Mixed {
			t.Errorf("snapshot %d (n=%d) did not mix within budget", i, p.Nodes)
		}
		if p.SLEM <= 0 || p.SLEM > 0.9 {
			t.Errorf("snapshot %d: SLEM %v, want a fast mixer (<= 0.9)", i, p.SLEM)
		}
		if p.MinAlpha <= 0 {
			t.Errorf("snapshot %d: min alpha %v", i, p.MinAlpha)
		}
		if p.Degeneracy != 4 {
			t.Errorf("snapshot %d: degeneracy %d, want attach=4", i, p.Degeneracy)
		}
	}
	// Mixing time grows at most logarithmically: the largest snapshot
	// should not need more than ~3x the steps of the smallest.
	if points[3].MixingTime > 3*points[0].MixingTime+3 {
		t.Errorf("mixing time grew from %d to %d across 8x growth; expected ~log scaling",
			points[0].MixingTime, points[3].MixingTime)
	}
}

func TestTrackValidation(t *testing.T) {
	if _, err := Track(context.Background(), nil, TrackConfig{}); err == nil {
		t.Error("Track(no snapshots): want error")
	}
}
