package sybil

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func honestGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(n, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestInjectBasics(t *testing.T) {
	h := honestGraph(t, 200)
	a, err := Inject(h, AttackConfig{SybilNodes: 50, AttackEdges: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.HonestNodes != 200 || a.NumSybil() != 50 {
		t.Errorf("sizes = %d honest, %d sybil", a.HonestNodes, a.NumSybil())
	}
	if len(a.AttackEdges) != 10 {
		t.Errorf("attack edges = %d, want 10", len(a.AttackEdges))
	}
	for _, e := range a.AttackEdges {
		if !a.IsHonest(e.U) || a.IsHonest(e.V) {
			t.Errorf("attack edge %v does not cross boundary", e)
		}
		if !a.Combined.HasEdge(e.U, e.V) {
			t.Errorf("attack edge %v missing from combined graph", e)
		}
	}
	// The honest region is untouched inside the combined graph.
	for _, e := range h.Edges() {
		if !a.Combined.HasEdge(e.U, e.V) {
			t.Errorf("honest edge %v missing", e)
		}
	}
	// Cross-boundary edges are exactly the attack edges.
	cross := 0
	for _, e := range a.Combined.Edges() {
		if a.IsHonest(e.U) != a.IsHonest(e.V) {
			cross++
		}
	}
	if cross != 10 {
		t.Errorf("cross edges = %d, want 10", cross)
	}
}

func TestInjectTopologies(t *testing.T) {
	h := honestGraph(t, 100)
	for _, topo := range []SybilTopology{TopologyScaleFree, TopologyRandom, TopologyClique} {
		a, err := Inject(h, AttackConfig{SybilNodes: 20, AttackEdges: 5, Topology: topo, Seed: 2})
		if err != nil {
			t.Fatalf("topology %d: %v", topo, err)
		}
		if a.NumSybil() != 20 {
			t.Errorf("topology %d: sybils = %d", topo, a.NumSybil())
		}
	}
	if _, err := Inject(h, AttackConfig{SybilNodes: 20, AttackEdges: 5, Topology: 99, Seed: 2}); err == nil {
		t.Error("unknown topology: want error")
	}
	if _, err := Inject(h, AttackConfig{SybilNodes: 5000, AttackEdges: 5, Topology: TopologyClique}); err == nil {
		t.Error("huge clique: want error")
	}
}

func TestInjectSmallSybilRegions(t *testing.T) {
	h := honestGraph(t, 50)
	for _, n := range []int{1, 2, 3, 4} {
		a, err := Inject(h, AttackConfig{SybilNodes: n, AttackEdges: 1, Seed: 3})
		if err != nil {
			t.Fatalf("sybil region %d: %v", n, err)
		}
		if a.NumSybil() != n {
			t.Errorf("sybil region %d: got %d", n, a.NumSybil())
		}
	}
}

func TestInjectValidation(t *testing.T) {
	h := honestGraph(t, 50)
	bad := []AttackConfig{
		{SybilNodes: 0, AttackEdges: 1},
		{SybilNodes: 5, AttackEdges: 0},
		{SybilNodes: 1, AttackEdges: 51},
	}
	for _, cfg := range bad {
		if _, err := Inject(h, cfg); err == nil {
			t.Errorf("Inject(%+v): want error", cfg)
		}
	}
	tiny := graph.NewBuilder(1).Build()
	if _, err := Inject(tiny, AttackConfig{SybilNodes: 1, AttackEdges: 1}); err == nil {
		t.Error("Inject(tiny honest graph): want error")
	}
}

func TestMetrics(t *testing.T) {
	m := Metrics{HonestAccepted: 90, HonestTotal: 100, SybilAccepted: 6, AttackEdges: 3}
	if m.HonestAcceptRate() != 0.9 {
		t.Errorf("HonestAcceptRate = %v", m.HonestAcceptRate())
	}
	if m.SybilsPerAttackEdge() != 2 {
		t.Errorf("SybilsPerAttackEdge = %v", m.SybilsPerAttackEdge())
	}
	var zero Metrics
	if zero.HonestAcceptRate() != 0 || zero.SybilsPerAttackEdge() != 0 {
		t.Error("zero metrics should be 0")
	}
}

func TestEvaluate(t *testing.T) {
	h := honestGraph(t, 100)
	a, err := Inject(h, AttackConfig{SybilNodes: 10, AttackEdges: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	accepted := make([]bool, a.Combined.NumNodes())
	for v := 0; v < 50; v++ {
		accepted[v] = true // half the honest nodes
	}
	accepted[100] = true // one sybil
	m, err := Evaluate(a, accepted, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Verifier (node 0, accepted) is excluded: 49 of 99.
	if m.HonestAccepted != 49 || m.HonestTotal != 99 {
		t.Errorf("honest tally = %d/%d, want 49/99", m.HonestAccepted, m.HonestTotal)
	}
	if m.SybilAccepted != 1 || m.AttackEdges != 4 {
		t.Errorf("sybil tally = %d/%d", m.SybilAccepted, m.AttackEdges)
	}
	if _, err := Evaluate(a, accepted[:5], 0); err == nil {
		t.Error("Evaluate(short vector): want error")
	}
	if _, err := Evaluate(a, accepted, 9999); err == nil {
		t.Error("Evaluate(bad verifier): want error")
	}
}

func TestRouteTableDeterministicAndValid(t *testing.T) {
	g := honestGraph(t, 80)
	rt := NewRouteTable(g, 9)
	route, err := rt.Route(0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 20 {
		t.Fatalf("route length = %d, want 20", len(route))
	}
	for i, hop := range route {
		if !g.HasEdge(hop[0], hop[1]) {
			t.Fatalf("hop %d = %v is not an edge", i, hop)
		}
		if i > 0 && route[i-1][1] != hop[0] {
			t.Fatalf("hop %d does not continue from previous: %v -> %v", i, route[i-1], hop)
		}
	}
	// Same table, same start: identical route.
	route2, err := rt.Route(0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range route {
		if route[i] != route2[i] {
			t.Fatalf("routes diverge at hop %d", i)
		}
	}
	tail, err := rt.Tail(0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if tail != route[19] {
		t.Errorf("Tail = %v, want %v", tail, route[19])
	}
}

func TestRouteConvergent(t *testing.T) {
	// The defining property of permutation routing: two routes that enter
	// a node through the same edge leave through the same edge, so routes
	// that merge stay merged.
	g := honestGraph(t, 60)
	rt := NewRouteTable(g, 3)
	// Route A from node 0 slot 0, Route B re-traces A from its midpoint.
	routeA, err := rt.Route(0, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	mid := routeA[10]
	slot, err := rt.edgeSlot(mid[0], mid[1])
	if err != nil {
		t.Fatal(err)
	}
	routeB, err := rt.Route(mid[0], int(slot), 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if routeA[10+i] != routeB[i] {
			t.Fatalf("merged routes diverge at offset %d: %v vs %v", i, routeA[10+i], routeB[i])
		}
	}
}

func TestRouteErrors(t *testing.T) {
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	rt := NewRouteTable(g, 1)
	if _, err := rt.Route(9, 0, 5); err == nil {
		t.Error("Route(bad start): want error")
	}
	if _, err := rt.Route(2, 0, 5); err == nil {
		t.Error("Route(isolated): want error")
	}
	if _, err := rt.Route(0, 5, 5); err == nil {
		t.Error("Route(bad slot): want error")
	}
	if _, err := rt.Route(0, 0, 0); err == nil {
		t.Error("Route(zero length): want error")
	}
	if _, err := rt.edgeSlot(0, 2); err == nil {
		t.Error("edgeSlot(non-edge): want error")
	}
}

// Property: random routes are reversible in the sense that the multiset of
// directed edges used at each step forms a permutation — no two distinct
// entry edges at a node map to the same exit edge.
func TestRoutePermutationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		g, err := gen.GNM(n, int64(3*n), seed)
		if err != nil {
			return false
		}
		rt := NewRouteTable(g, seed)
		for v := graph.NodeID(0); int(v) < n; v++ {
			p := rt.perm[v]
			seen := make(map[int32]bool, len(p))
			for _, x := range p {
				if x < 0 || int(x) >= len(p) || seen[x] {
					return false
				}
				seen[x] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
