package sybil

import (
	"testing"

	"github.com/trustnet/trustnet/internal/faults"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func churnAttack(t *testing.T) *Attack {
	t.Helper()
	honest, err := gen.BarabasiAlbert(400, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Inject(honest, AttackConfig{SybilNodes: 80, AttackEdges: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDegradeZeroChurnIsIdentity(t *testing.T) {
	a := churnAttack(t)
	m, err := faults.New(a.Combined, faults.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Degrade(a, m)
	if err != nil {
		t.Fatal(err)
	}
	if d.Combined.NumEdges() != a.Combined.NumEdges() {
		t.Errorf("zero-churn combined edges %d, want %d", d.Combined.NumEdges(), a.Combined.NumEdges())
	}
	if d.Honest.NumEdges() != a.Honest.NumEdges() {
		t.Errorf("zero-churn honest edges %d, want %d", d.Honest.NumEdges(), a.Honest.NumEdges())
	}
	if len(d.AttackEdges) != len(a.AttackEdges) {
		t.Errorf("zero-churn attack edges %d, want %d", len(d.AttackEdges), len(a.AttackEdges))
	}
	ce, de := a.Combined.Edges(), d.Combined.Edges()
	for i := range ce {
		if ce[i] != de[i] {
			t.Fatalf("edge %d: %v vs %v — zero-churn degrade not bit-for-bit", i, ce[i], de[i])
		}
	}
}

func TestDegradeRemovesDownNodesAndAttackEdges(t *testing.T) {
	a := churnAttack(t)
	m, err := faults.New(a.Combined, faults.Config{Churn: 0.4, Seed: 9, Protected: []graph.NodeID{0}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Degrade(a, m)
	if err != nil {
		t.Fatal(err)
	}
	if d.HonestNodes != a.HonestNodes || d.Combined.NumNodes() != a.Combined.NumNodes() {
		t.Fatal("degrade changed the ID space")
	}
	for v := graph.NodeID(0); int(v) < d.Combined.NumNodes(); v++ {
		if !m.Alive(v) && d.Combined.Degree(v) != 0 {
			t.Fatalf("down node %d keeps %d edges", v, d.Combined.Degree(v))
		}
	}
	if len(d.AttackEdges) >= len(a.AttackEdges) {
		t.Skipf("no attack edge lost at this seed (%d of %d survive)", len(d.AttackEdges), len(a.AttackEdges))
	}
	for _, e := range d.AttackEdges {
		if !m.Alive(e.U) || !m.Alive(e.V) {
			t.Fatalf("surviving attack edge %v has a down endpoint", e)
		}
	}
}

func TestDegradeRejectsForeignModel(t *testing.T) {
	a := churnAttack(t)
	other, err := gen.BarabasiAlbert(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := faults.New(other, faults.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Degrade(a, m); err == nil {
		t.Error("Degrade with a model over another graph: want error")
	}
}

func TestEvaluateAliveSkipsChurnedNodes(t *testing.T) {
	a := churnAttack(t)
	m, err := faults.New(a.Combined, faults.Config{Churn: 0.3, Seed: 5, Protected: []graph.NodeID{0}})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Degrade(a, m)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make([]bool, a.Combined.NumNodes())
	for i := range accepted {
		accepted[i] = true // accept everyone; only liveness filters
	}
	mt, err := EvaluateAlive(d, accepted, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	aliveHonest := 0
	aliveSybil := 0
	for v := graph.NodeID(0); int(v) < a.Combined.NumNodes(); v++ {
		if v == 0 || !m.Alive(v) {
			continue
		}
		if a.IsHonest(v) {
			aliveHonest++
		} else {
			aliveSybil++
		}
	}
	if mt.HonestTotal != aliveHonest || mt.HonestAccepted != aliveHonest {
		t.Errorf("honest tally %d/%d, want %d/%d", mt.HonestAccepted, mt.HonestTotal, aliveHonest, aliveHonest)
	}
	if mt.SybilAccepted != aliveSybil {
		t.Errorf("sybil tally %d, want %d", mt.SybilAccepted, aliveSybil)
	}
	if mt.AttackEdges != len(d.AttackEdges) {
		t.Errorf("attack edges %d, want surviving %d", mt.AttackEdges, len(d.AttackEdges))
	}
}

func TestEvaluateAliveValidation(t *testing.T) {
	a := churnAttack(t)
	m, err := faults.New(a.Combined, faults.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateAlive(a, make([]bool, 3), 0, m); err == nil {
		t.Error("EvaluateAlive(short vector): want error")
	}
	if _, err := EvaluateAlive(a, make([]bool, a.Combined.NumNodes()), -1, m); err == nil {
		t.Error("EvaluateAlive(bad verifier): want error")
	}
}
