// Package communityrank implements the community-detection-based Sybil
// "defense" distilled by Viswanath et al. (SIGCOMM 2010) from the
// random-walk designs the paper surveys: rank all nodes by their
// degree-normalized probability under a short random walk from the
// trusted verifier, then cut the ranking at the prefix of minimum
// conductance. Nodes inside the cut are accepted.
//
// On a fast-mixing honest region the minimum-conductance cut is the
// sybil attachment boundary, so the scheme matches the dedicated
// defenses; on a slow-mixing region the verifier's own community is an
// even lower-conductance cut and honest nodes outside it are rejected —
// the community-structure sensitivity that both Viswanath et al. and
// this paper highlight.
package communityrank

import (
	"fmt"
	"math"

	"github.com/trustnet/trustnet/internal/community"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
	"github.com/trustnet/trustnet/internal/walk"
)

// Config parameterizes a run.
type Config struct {
	// WalkLength is the trust-ranking walk length. Defaults to
	// 3·ceil(log2 n) — long enough to cover a fast-mixing honest region,
	// short enough not to bleed across attack edges.
	WalkLength int
	// MinAcceptFraction bounds the sweep below: the accepted set must
	// hold at least this fraction of nodes. Defaults to 0.25.
	MinAcceptFraction float64
}

func (c *Config) fill(n int) error {
	if c.WalkLength == 0 {
		c.WalkLength = 3 * int(math.Ceil(math.Log2(float64(n)+1)))
	}
	if c.WalkLength < 1 {
		return fmt.Errorf("communityrank: walk length %d must be >= 1", c.WalkLength)
	}
	if c.MinAcceptFraction == 0 {
		c.MinAcceptFraction = 0.25
	}
	if c.MinAcceptFraction <= 0 || c.MinAcceptFraction >= 1 {
		return fmt.Errorf("communityrank: min accept fraction %v out of (0,1)", c.MinAcceptFraction)
	}
	return nil
}

// Result carries the ranking and the cut.
type Result struct {
	// Score[v] is the degree-normalized landing probability of the
	// trust walk at v (the defense-equivalent ranking of Viswanath et
	// al.).
	Score []float64
	// Accepted is the minimum-conductance prefix of the ranking.
	Accepted []bool
	// CutConductance is φ of the accepted set.
	CutConductance float64
}

// Run ranks every node from the verifier and cuts at minimum conductance.
func Run(a *sybil.Attack, verifier graph.NodeID, cfg Config) (*Result, error) {
	g := a.Combined
	n := g.NumNodes()
	if err := cfg.fill(n); err != nil {
		return nil, err
	}
	if !g.Valid(verifier) {
		return nil, fmt.Errorf("communityrank: verifier %d out of range", verifier)
	}
	if g.Degree(verifier) == 0 {
		return nil, fmt.Errorf("communityrank: verifier %d is isolated", verifier)
	}

	// Exact lazy-walk distribution from the verifier; lazy so the score
	// is well defined on bipartite-ish structures.
	dist, err := walk.NewDistribution(g, verifier, true)
	if err != nil {
		return nil, fmt.Errorf("communityrank: %w", err)
	}
	for i := 0; i < cfg.WalkLength; i++ {
		dist.Step()
	}
	probs := dist.Probabilities()
	score := make([]float64, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		if d := g.Degree(v); d > 0 {
			score[v] = probs[v] / float64(d)
		}
	}

	minSize := int(cfg.MinAcceptFraction * float64(n))
	if minSize < 1 {
		minSize = 1
	}
	accepted, phi, err := community.SweepCut(g, score, minSize, n-1)
	if err != nil {
		return nil, fmt.Errorf("communityrank: %w", err)
	}
	accepted[verifier] = true
	return &Result{Score: score, Accepted: accepted, CutConductance: phi}, nil
}
