package communityrank

import (
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
)

func TestRunFastMixerSeparates(t *testing.T) {
	honest, err := gen.BarabasiAlbert(500, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 120, AttackEdges: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(a, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sybil.Evaluate(a, res.Accepted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hr := m.HonestAcceptRate(); hr < 0.9 {
		t.Errorf("honest acceptance = %v, want >= 0.9 on a fast mixer", hr)
	}
	sybilRate := float64(m.SybilAccepted) / float64(a.NumSybil())
	if sybilRate > 0.2 {
		t.Errorf("sybil acceptance = %v, want <= 0.2", sybilRate)
	}
	if res.CutConductance <= 0 {
		t.Errorf("cut conductance = %v, want > 0", res.CutConductance)
	}
}

func TestRunSlowMixerConfusesCommunities(t *testing.T) {
	// Viswanath et al.'s observation, which the paper builds on: with
	// strong community structure the ranking cuts at the verifier's own
	// community boundary and rejects distant honest communities.
	honest, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 8, CommunitySize: 80, Attach: 4, Bridges: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 120, AttackEdges: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(a, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sybil.Evaluate(a, res.Accepted, 0)
	if err != nil {
		t.Fatal(err)
	}
	fastHonest := 0.9 // threshold the fast mixer clears above
	if hr := m.HonestAcceptRate(); hr >= fastHonest {
		t.Errorf("honest acceptance = %v on a slow mixer, expected community confusion (< %v)",
			hr, fastHonest)
	}
}

func TestRunValidation(t *testing.T) {
	honest, err := gen.BarabasiAlbert(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 10, AttackEdges: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(a, 9999, Config{}); err == nil {
		t.Error("Run(bad verifier): want error")
	}
	if _, err := Run(a, 0, Config{WalkLength: -1}); err == nil {
		t.Error("Run(bad walk length): want error")
	}
	if _, err := Run(a, 0, Config{MinAcceptFraction: 2}); err == nil {
		t.Error("Run(bad fraction): want error")
	}
	b := graph.NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	iso := &sybil.Attack{Honest: g, Combined: g, HonestNodes: 4}
	if _, err := Run(iso, 3, Config{}); err == nil {
		t.Error("Run(isolated verifier): want error")
	}
}

func TestVerifierAlwaysAccepted(t *testing.T) {
	honest, err := gen.BarabasiAlbert(200, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 30, AttackEdges: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(a, 17, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted[17] {
		t.Error("verifier not accepted")
	}
	if len(res.Score) != a.Combined.NumNodes() {
		t.Errorf("score length = %d", len(res.Score))
	}
}
