package sybil

import (
	"fmt"

	"github.com/trustnet/trustnet/internal/faults"
	"github.com/trustnet/trustnet/internal/graph"
)

// Degrade returns the attack instance as a fault schedule leaves it:
// the combined graph is the model's degraded graph (down nodes
// isolated, lost edges removed), the honest graph loses the same nodes
// and edges, and only attack edges whose endpoints both survived — and
// which were not independently lost — remain. Node IDs are unchanged,
// so IsHonest and every defense's verifier bookkeeping keep working on
// the degraded instance.
//
// The model must have been built over a.Combined: churn is a property
// of the deployed (honest + sybil) population, and sybil identities
// churn too — an adversary's machines fail like anyone else's unless it
// pays to keep them up.
func Degrade(a *Attack, m *faults.Model) (*Attack, error) {
	if m.Graph() != a.Combined {
		return nil, fmt.Errorf("sybil: fault model built over %v, want the attack's combined graph %v",
			m.Graph(), a.Combined)
	}
	combined := m.Degraded()

	// The degraded honest region is the fault view induced on the honest
	// IDs: honest nodes are [0, h), so induced-view local IDs coincide
	// with the original ones, and every surviving combined edge between
	// two honest nodes is an honest edge (attack edges always cross into
	// the sybil region). No rebuild — the induced view is zero-copy and
	// only its (cached) materialization copies.
	honestIDs := make([]graph.NodeID, a.Honest.NumNodes())
	for i := range honestIDs {
		honestIDs[i] = graph.NodeID(i)
	}
	hv, err := graph.NewInducedView(m.View(), honestIDs)
	if err != nil {
		return nil, fmt.Errorf("sybil: degrade honest region: %w", err)
	}

	surviving := make([]graph.Edge, 0, len(a.AttackEdges))
	for _, e := range a.AttackEdges {
		if m.EdgeUp(e.U, e.V) {
			surviving = append(surviving, e)
		}
	}
	return &Attack{
		Honest:      hv.Materialize(),
		Combined:    combined,
		HonestNodes: a.HonestNodes,
		AttackEdges: surviving,
	}, nil
}

// EvaluateAlive is Evaluate restricted to nodes the fault model left
// up: churned honest nodes are neither penalized as rejected nor
// credited as accepted (they are gone, not refused), and churned sybils
// cannot count as admitted. Admissions are still normalized by the
// *surviving* attack edges of the degraded instance passed in.
func EvaluateAlive(a *Attack, accepted []bool, verifier graph.NodeID, m *faults.Model) (Metrics, error) {
	if len(accepted) != a.Combined.NumNodes() {
		return Metrics{}, fmt.Errorf("sybil: acceptance vector length %d, want %d",
			len(accepted), a.Combined.NumNodes())
	}
	if !a.Combined.Valid(verifier) {
		return Metrics{}, fmt.Errorf("sybil: verifier %d out of range", verifier)
	}
	mt := Metrics{AttackEdges: len(a.AttackEdges)}
	for v, ok := range accepted {
		node := graph.NodeID(v)
		if node == verifier || !m.Alive(node) {
			continue
		}
		if a.IsHonest(node) {
			mt.HonestTotal++
			if ok {
				mt.HonestAccepted++
			}
		} else if ok {
			mt.SybilAccepted++
		}
	}
	return mt, nil
}
