// Package gatekeeper implements the GateKeeper node-admission protocol of
// Tran et al. (INFOCOM 2011), the defense whose expansion assumption the
// paper validates and whose Table II experiment this repository
// regenerates.
//
// Protocol sketch:
//
//  1. A controller samples m "ticket sources" (distributers) as the
//     endpoints of random walks from itself.
//  2. Each source runs a breadth-first ticket distribution: it is seeded
//     with t tickets; every node consumes one ticket and forwards the rest
//     evenly to its neighbors in the next BFS level, dropping tickets with
//     nowhere to go. The source doubles t until the tickets reach at least
//     a target fraction of the graph, which is where the good-expansion
//     assumption does its work.
//  3. A suspect is admitted iff it received tickets from at least f·m of
//     the m sources. f is the security parameter swept in Table II.
//
// Because tickets can only enter the sybil region over the few attack
// edges, sybils are starved of tickets and the number of admitted sybils
// per attack edge stays O(1) (O(log k) in the paper's analysis).
package gatekeeper

import (
	"fmt"
	"math/rand"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
	"github.com/trustnet/trustnet/internal/walk"
)

// Config parameterizes a GateKeeper run.
type Config struct {
	// Distributers is m, the number of sampled ticket sources. The
	// paper's Table II samples 99.
	Distributers int
	// WalkLength is the random-walk length used to sample distributers.
	// Defaults to 10 when 0 (O(log n) for the graphs used here).
	WalkLength int
	// TargetReach is the fraction of the graph each source's tickets must
	// reach before it stops doubling. Defaults to 0.5.
	TargetReach float64
	// MaxDoublings bounds the ticket doubling loop. Defaults to 40.
	MaxDoublings int
	// Seed makes the run deterministic.
	Seed int64
}

func (c *Config) fill(n int) error {
	if c.Distributers < 1 {
		return fmt.Errorf("gatekeeper: need >= 1 distributer, got %d", c.Distributers)
	}
	if c.WalkLength == 0 {
		c.WalkLength = 10
	}
	if c.WalkLength < 1 {
		return fmt.Errorf("gatekeeper: walk length %d must be >= 1", c.WalkLength)
	}
	if c.TargetReach == 0 {
		c.TargetReach = 0.5
	}
	if c.TargetReach <= 0 || c.TargetReach > 1 {
		return fmt.Errorf("gatekeeper: target reach %v out of (0,1]", c.TargetReach)
	}
	if c.MaxDoublings == 0 {
		c.MaxDoublings = 40
	}
	if c.MaxDoublings < 1 {
		return fmt.Errorf("gatekeeper: max doublings %d must be >= 1", c.MaxDoublings)
	}
	_ = n
	return nil
}

// Outcome is the result of one GateKeeper run. A single run supports
// evaluating any admission threshold f, because admission only thresholds
// the per-node source counts.
type Outcome struct {
	// ReachCount[v] is the number of distributers whose tickets reached v.
	ReachCount []int
	// Distributers is m (the actual number of sources used).
	Distributers int
	// Sources are the sampled distributers.
	Sources []graph.NodeID
	// SybilSources counts sampled distributers that were sybil identities
	// (escaped random walks).
	SybilSources int
}

// Accepted returns the admission vector at threshold f: node v is admitted
// iff ReachCount[v] >= f * Distributers.
func (o *Outcome) Accepted(f float64) ([]bool, error) {
	if f <= 0 || f > 1 {
		return nil, fmt.Errorf("gatekeeper: admission threshold %v out of (0,1]", f)
	}
	need := int(f * float64(o.Distributers))
	if need < 1 {
		need = 1
	}
	out := make([]bool, len(o.ReachCount))
	for v, c := range o.ReachCount {
		out[v] = c >= need
	}
	return out, nil
}

// Run executes GateKeeper from the given controller over an attack
// instance. The controller must be an honest node with at least one edge.
func Run(a *sybil.Attack, controller graph.NodeID, cfg Config) (*Outcome, error) {
	g := a.Combined
	if err := cfg.fill(g.NumNodes()); err != nil {
		return nil, err
	}
	if !g.Valid(controller) || !a.IsHonest(controller) {
		return nil, fmt.Errorf("gatekeeper: controller %d is not an honest node", controller)
	}
	if g.Degree(controller) == 0 {
		return nil, fmt.Errorf("gatekeeper: controller %d is isolated", controller)
	}

	// Step 1: sample distributers by random walks from the controller.
	w := walk.NewWalker(g, cfg.Seed)
	sources := make([]graph.NodeID, cfg.Distributers)
	sybilSources := 0
	for i := range sources {
		end, err := w.Endpoint(controller, cfg.WalkLength)
		if err != nil {
			return nil, fmt.Errorf("gatekeeper: sample distributer: %w", err)
		}
		sources[i] = end
		if !a.IsHonest(end) {
			sybilSources++
		}
	}

	// Step 2+3: ticket distribution from each source, counting per-node
	// source coverage.
	reach := make([]int, g.NumNodes())
	bfs := graph.NewBFSWorker(g)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	tickets := make([]int64, g.NumNodes())
	for _, src := range sources {
		reached, err := distribute(g, bfs, src, cfg, rng, tickets)
		if err != nil {
			return nil, fmt.Errorf("gatekeeper: distribute from %d: %w", src, err)
		}
		for _, v := range reached {
			reach[v]++
		}
	}
	return &Outcome{
		ReachCount:   reach,
		Distributers: cfg.Distributers,
		Sources:      sources,
		SybilSources: sybilSources,
	}, nil
}

// distribute runs the doubling ticket distribution from src and returns
// the nodes that received at least one ticket. The tickets slice is caller
// scratch space of size n.
func distribute(g *graph.Graph, bfs *graph.BFSWorker, src graph.NodeID, cfg Config, rng *rand.Rand, tickets []int64) ([]graph.NodeID, error) {
	res, err := bfs.Run(src)
	if err != nil {
		return nil, err
	}
	// Order nodes by BFS level once; the ticket flow only depends on the
	// level structure.
	order := make([]graph.NodeID, 0, res.Reached)
	dist := res.Dist
	// Counting sort by distance.
	levelStart := make([]int, len(res.LevelSizes)+1)
	for d, c := range res.LevelSizes {
		levelStart[d+1] = levelStart[d] + int(c)
	}
	order = order[:res.Reached]
	cursor := make([]int, len(res.LevelSizes))
	copy(cursor, levelStart[:len(res.LevelSizes)])
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if dist[v] >= 0 {
			order[cursor[dist[v]]] = v
			cursor[dist[v]]++
		}
	}

	target := int(cfg.TargetReach * float64(g.NumNodes()))
	if target < 1 {
		target = 1
	}
	if target > res.Reached {
		// The source's component is smaller than the target; reach what
		// is reachable.
		target = res.Reached
	}
	t := int64(1)
	var reached []graph.NodeID
	for doubling := 0; doubling < cfg.MaxDoublings; doubling++ {
		reached = flow(g, dist, order, src, t, rng, tickets)
		if len(reached) >= target {
			return reached, nil
		}
		t *= 2
	}
	// Expansion too poor to hit the target within the doubling budget:
	// return the best effort, as the deployed protocol would.
	return reached, nil
}

// flow pushes t tickets from src down the BFS level structure and returns
// the set of nodes holding at least one ticket.
func flow(g *graph.Graph, dist []int32, order []graph.NodeID, src graph.NodeID, t int64, rng *rand.Rand, tickets []int64) []graph.NodeID {
	for i := range tickets {
		tickets[i] = 0
	}
	tickets[src] = t
	reached := make([]graph.NodeID, 0, len(order))
	var fwd []graph.NodeID
	for _, v := range order {
		have := tickets[v]
		if have <= 0 {
			continue
		}
		reached = append(reached, v)
		have-- // consume one
		if have == 0 {
			continue
		}
		fwd = fwd[:0]
		for _, u := range g.Neighbors(v) {
			if dist[u] == dist[v]+1 {
				fwd = append(fwd, u)
			}
		}
		if len(fwd) == 0 {
			continue // tickets dropped at the frontier
		}
		share := have / int64(len(fwd))
		rem := have % int64(len(fwd))
		// Give the remainder to a random prefix so no neighbor is
		// systematically favored.
		off := rng.Intn(len(fwd))
		for i, u := range fwd {
			extra := int64(0)
			if int64((i+off)%len(fwd)) < rem {
				extra = 1
			}
			tickets[u] += share + extra
		}
	}
	return reached
}
