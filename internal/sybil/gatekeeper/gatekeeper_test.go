package gatekeeper

import (
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
)

func attackOn(t *testing.T, honest *graph.Graph, sybils, attackEdges int) *sybil.Attack {
	t.Helper()
	a, err := sybil.Inject(honest, sybil.AttackConfig{
		SybilNodes:  sybils,
		AttackEdges: attackEdges,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRunAdmitsHonestRejectsSybil(t *testing.T) {
	honest, err := gen.BarabasiAlbert(600, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := attackOn(t, honest, 120, 6)
	out, err := Run(a, 0, Config{Distributers: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if out.Distributers != 40 || len(out.Sources) != 40 {
		t.Fatalf("distributers = %d/%d", out.Distributers, len(out.Sources))
	}
	accepted, err := out.Accepted(0.2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sybil.Evaluate(a, accepted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rate := m.HonestAcceptRate(); rate < 0.8 {
		t.Errorf("honest acceptance = %v, want >= 0.8 at f=0.2", rate)
	}
	if spe := m.SybilsPerAttackEdge(); spe > 4 {
		t.Errorf("sybils per attack edge = %v, want bounded (<= 4)", spe)
	}
	// Sybils must fare dramatically worse than honest nodes.
	sybilRate := float64(m.SybilAccepted) / float64(a.NumSybil())
	if sybilRate >= m.HonestAcceptRate() {
		t.Errorf("sybil acceptance rate %v >= honest rate %v", sybilRate, m.HonestAcceptRate())
	}
}

func TestHonestAcceptanceDecreasesWithF(t *testing.T) {
	// The Table II trend: raising the admission threshold f lowers honest
	// acceptance (and sybil acceptance).
	honest, err := gen.BarabasiAlbert(500, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := attackOn(t, honest, 100, 5)
	out, err := Run(a, 3, Config{Distributers: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var prevHonest, prevSybil float64 = 2, 1e18
	for _, f := range []float64{0.1, 0.2, 0.4, 0.8} {
		acc, err := out.Accepted(f)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sybil.Evaluate(a, acc, 3)
		if err != nil {
			t.Fatal(err)
		}
		if hr := m.HonestAcceptRate(); hr > prevHonest+1e-9 {
			t.Errorf("honest acceptance increased with f: %v -> %v", prevHonest, hr)
		} else {
			prevHonest = hr
		}
		if spe := m.SybilsPerAttackEdge(); spe > prevSybil+1e-9 {
			t.Errorf("sybil acceptance increased with f: %v -> %v", prevSybil, spe)
		} else {
			prevSybil = spe
		}
	}
}

func TestMoreAttackEdgesMoreSybils(t *testing.T) {
	honest, err := gen.BarabasiAlbert(500, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	few := attackOn(t, honest, 100, 2)
	many := attackOn(t, honest, 100, 40)
	cfg := Config{Distributers: 40, Seed: 9}
	outFew, err := Run(few, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	outMany, err := Run(many, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	accFew, err := outFew.Accepted(0.2)
	if err != nil {
		t.Fatal(err)
	}
	accMany, err := outMany.Accepted(0.2)
	if err != nil {
		t.Fatal(err)
	}
	mFew, err := sybil.Evaluate(few, accFew, 0)
	if err != nil {
		t.Fatal(err)
	}
	mMany, err := sybil.Evaluate(many, accMany, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mMany.SybilAccepted < mFew.SybilAccepted {
		t.Errorf("absolute sybil admissions decreased with more attack edges: %d -> %d",
			mFew.SybilAccepted, mMany.SybilAccepted)
	}
}

func TestRunValidation(t *testing.T) {
	honest, err := gen.BarabasiAlbert(100, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := attackOn(t, honest, 10, 2)
	bad := []Config{
		{Distributers: 0},
		{Distributers: 5, WalkLength: -1},
		{Distributers: 5, TargetReach: 1.5},
		{Distributers: 5, MaxDoublings: -1},
	}
	for _, cfg := range bad {
		if _, err := Run(a, 0, cfg); err == nil {
			t.Errorf("Run(%+v): want error", cfg)
		}
	}
	// Sybil controller rejected.
	if _, err := Run(a, graph.NodeID(100), Config{Distributers: 5}); err == nil {
		t.Error("Run(sybil controller): want error")
	}
	if _, err := Run(a, 9999, Config{Distributers: 5}); err == nil {
		t.Error("Run(bad controller): want error")
	}
}

func TestAcceptedThresholdValidation(t *testing.T) {
	o := &Outcome{ReachCount: []int{0, 5, 10}, Distributers: 10}
	if _, err := o.Accepted(0); err == nil {
		t.Error("Accepted(0): want error")
	}
	if _, err := o.Accepted(1.5); err == nil {
		t.Error("Accepted(1.5): want error")
	}
	acc, err := o.Accepted(0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true}
	for i := range want {
		if acc[i] != want[i] {
			t.Errorf("Accepted[%d] = %v, want %v", i, acc[i], want[i])
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	honest, err := gen.BarabasiAlbert(200, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	a := attackOn(t, honest, 40, 3)
	cfg := Config{Distributers: 20, Seed: 77}
	o1, err := Run(a, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Run(a, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range o1.ReachCount {
		if o1.ReachCount[v] != o2.ReachCount[v] {
			t.Fatalf("reach counts differ at node %d: %d vs %d", v, o1.ReachCount[v], o2.ReachCount[v])
		}
	}
}

func TestFlowConservesAtSourceLevel(t *testing.T) {
	// On a star, t tickets at the hub: hub consumes 1, leaves split the
	// rest; every leaf with >= 1 ticket is reached.
	g, err := gen.Star(11) // hub + 10 leaves
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(g.NumNodes())
	for _, e := range g.Edges() {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	a := &sybil.Attack{Honest: g, Combined: g, HonestNodes: g.NumNodes()}
	out, err := Run(a, 0, Config{Distributers: 1, WalkLength: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range out.ReachCount {
		total += c
	}
	// The single distributer must reach at least half the star.
	if total < 6 {
		t.Errorf("reached %d node-source pairs, want >= 6", total)
	}
}
