// Package bridgecut implements a betweenness-based Sybil defense in the
// spirit of Quercia and Hailes (INFOCOM 2010, reference [19] of the
// paper), which the paper lists among the designs built on "(node)
// betweenness for Sybil defense".
//
// The observation: attack edges bridge two internally well-connected
// regions, so shortest paths between the regions concentrate on them and
// their edge betweenness is anomalously high. The defense iteratively
// removes the highest-betweenness edges (Girvan–Newman style) until the
// graph disconnects, then accepts the verifier's component. Like the
// random-walk defenses, it degrades on graphs whose *honest* community
// structure also creates high-betweenness bridges — the same
// community-sensitivity the paper measures.
package bridgecut

import (
	"context"
	"fmt"

	"github.com/trustnet/trustnet/internal/centrality"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
)

// Config parameterizes a run.
type Config struct {
	// MaxCutEdges bounds how many edges may be removed before the
	// defense gives up and accepts everything still attached to the
	// verifier. Defaults to 2·sqrt(m).
	MaxCutEdges int
	// Pivots samples betweenness sources (0 = exact). Defaults to exact
	// below 2000 nodes and 500 pivots above.
	Pivots int
	// BatchSize removes this many top edges between betweenness
	// recomputations. Exact Girvan–Newman uses 1; larger batches trade
	// fidelity for speed. Defaults to max(1, MaxCutEdges/8).
	BatchSize int
	// MinComponentFraction: a split only counts when the piece cut away
	// holds at least this fraction of nodes (guards against shaving
	// pendant vertices). Defaults to 0.02.
	MinComponentFraction float64
}

func (c *Config) fill(n int, m int64) error {
	if c.MaxCutEdges == 0 {
		root := 1
		for int64(root)*int64(root) < m {
			root++
		}
		c.MaxCutEdges = 2 * root
	}
	if c.MaxCutEdges < 1 {
		return fmt.Errorf("bridgecut: max cut edges %d must be >= 1", c.MaxCutEdges)
	}
	if c.Pivots == 0 && n >= 2000 {
		c.Pivots = 500
	}
	if c.Pivots < 0 {
		return fmt.Errorf("bridgecut: pivots %d must be >= 0", c.Pivots)
	}
	if c.BatchSize == 0 {
		c.BatchSize = c.MaxCutEdges / 8
		if c.BatchSize < 1 {
			c.BatchSize = 1
		}
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("bridgecut: batch size %d must be >= 1", c.BatchSize)
	}
	if c.MinComponentFraction == 0 {
		c.MinComponentFraction = 0.02
	}
	if c.MinComponentFraction <= 0 || c.MinComponentFraction >= 0.5 {
		return fmt.Errorf("bridgecut: min component fraction %v out of (0,0.5)", c.MinComponentFraction)
	}
	return nil
}

// Result reports the cut.
type Result struct {
	Accepted []bool
	// RemovedEdges lists the edges cut, in removal order.
	RemovedEdges []graph.Edge
	// Split reports whether a meaningful split was found before the
	// budget ran out (false = everything connected to the verifier was
	// accepted).
	Split bool
}

// Run executes the defense from the verifier's perspective.
func Run(ctx context.Context, a *sybil.Attack, verifier graph.NodeID, cfg Config) (*Result, error) {
	g := a.Combined
	n := g.NumNodes()
	if err := cfg.fill(n, g.NumEdges()); err != nil {
		return nil, err
	}
	if !g.Valid(verifier) {
		return nil, fmt.Errorf("bridgecut: verifier %d out of range", verifier)
	}
	if g.Degree(verifier) == 0 {
		return nil, fmt.Errorf("bridgecut: verifier %d is isolated", verifier)
	}

	// Working copy of the edge set.
	edges := g.Edges()
	removedSet := make(map[graph.Edge]struct{})
	res := &Result{}
	minPiece := int(cfg.MinComponentFraction * float64(n))
	if minPiece < 2 {
		minPiece = 2
	}

	current := g
	for len(res.RemovedEdges) < cfg.MaxCutEdges {
		scores, err := centrality.EdgeBetweenness(ctx, current, centrality.Config{Pivots: cfg.Pivots})
		if err != nil {
			return nil, fmt.Errorf("bridgecut: %w", err)
		}
		batch := cfg.BatchSize
		if rem := cfg.MaxCutEdges - len(res.RemovedEdges); batch > rem {
			batch = rem
		}
		top := centrality.TopEdges(scores, batch)
		if len(top) == 0 {
			break
		}
		for _, es := range top {
			removedSet[es.Edge] = struct{}{}
			res.RemovedEdges = append(res.RemovedEdges, es.Edge)
		}
		// Rebuild the working graph without the removed edges.
		b := graph.NewBuilder(n)
		for _, e := range edges {
			if _, gone := removedSet[e]; !gone {
				b.AddEdgeSafe(e.U, e.V)
			}
		}
		current = b.Build()
		// Check for a meaningful split.
		labels, sizes := graph.ConnectedComponents(current)
		if len(sizes) > 1 {
			// Size of the largest component that is NOT the verifier's.
			vLabel := labels[verifier]
			largestOther := int64(0)
			for lbl, sz := range sizes {
				if int32(lbl) != vLabel && sz > largestOther {
					largestOther = sz
				}
			}
			if int(largestOther) >= minPiece {
				res.Split = true
				res.Accepted = make([]bool, n)
				for v := 0; v < n; v++ {
					res.Accepted[v] = labels[v] == vLabel
				}
				return res, nil
			}
		}
	}
	// Budget exhausted without a meaningful split: accept the verifier's
	// component of the final working graph.
	labels, _ := graph.ConnectedComponents(current)
	res.Accepted = make([]bool, n)
	for v := 0; v < n; v++ {
		res.Accepted[v] = labels[v] == labels[verifier]
	}
	return res, nil
}
