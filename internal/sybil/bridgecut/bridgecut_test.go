package bridgecut

import (
	"context"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
)

func TestRunCutsAttackEdges(t *testing.T) {
	honest, err := gen.BarabasiAlbert(300, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 80, AttackEdges: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), a, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Split {
		t.Fatal("defense did not find a split")
	}
	m, err := sybil.Evaluate(a, res.Accepted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hr := m.HonestAcceptRate(); hr < 0.95 {
		t.Errorf("honest acceptance = %v, want >= 0.95 on a fast mixer", hr)
	}
	if m.SybilAccepted > 0 {
		t.Errorf("sybils accepted = %d, want 0 after a clean cut", m.SybilAccepted)
	}
	// The removed edges should include (most of) the actual attack edges.
	attackSet := map[graph.Edge]struct{}{}
	for _, e := range a.AttackEdges {
		attackSet[e.Canonical()] = struct{}{}
	}
	hit := 0
	for _, e := range res.RemovedEdges {
		if _, ok := attackSet[e]; ok {
			hit++
		}
	}
	if hit < len(a.AttackEdges) {
		t.Errorf("removed %d of %d attack edges", hit, len(a.AttackEdges))
	}
}

func TestRunCommunityConfusion(t *testing.T) {
	// On a community-structured honest graph without any attack, the
	// highest-betweenness edges are the honest bridges: the defense cuts
	// an honest community away — the paper's community-sensitivity
	// observation.
	honest, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 4, CommunitySize: 70, Attach: 4, Bridges: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := &sybil.Attack{Honest: honest, Combined: honest, HonestNodes: honest.NumNodes()}
	res, err := Run(context.Background(), a, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Split {
		t.Fatal("no split found on a 4-community graph")
	}
	m, err := sybil.Evaluate(a, res.Accepted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hr := m.HonestAcceptRate(); hr > 0.9 {
		t.Errorf("honest acceptance = %v; expected community confusion to reject a community", hr)
	}
}

func TestRunValidation(t *testing.T) {
	honest, err := gen.BarabasiAlbert(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 10, AttackEdges: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := Run(ctx, a, 9999, Config{}); err == nil {
		t.Error("Run(bad verifier): want error")
	}
	for _, cfg := range []Config{
		{MaxCutEdges: -1},
		{Pivots: -1},
		{BatchSize: -1},
		{MinComponentFraction: 0.9},
	} {
		if _, err := Run(ctx, a, 0, cfg); err == nil {
			t.Errorf("Run(%+v): want error", cfg)
		}
	}
	b := graph.NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	iso := &sybil.Attack{Honest: g, Combined: g, HonestNodes: 4}
	if _, err := Run(ctx, iso, 3, Config{}); err == nil {
		t.Error("Run(isolated verifier): want error")
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	// A clique has no bridges: the defense must exhaust its budget and
	// accept everything still attached to the verifier.
	g, err := gen.Complete(30)
	if err != nil {
		t.Fatal(err)
	}
	a := &sybil.Attack{Honest: g, Combined: g, HonestNodes: 30}
	res, err := Run(context.Background(), a, 0, Config{MaxCutEdges: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Split {
		t.Error("clique reported a meaningful split")
	}
	accepted := 0
	for _, ok := range res.Accepted {
		if ok {
			accepted++
		}
	}
	if accepted < 25 {
		t.Errorf("accepted %d of 30 clique nodes after budget exhaustion", accepted)
	}
}
