package sybil

import (
	"sort"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func TestPlacementString(t *testing.T) {
	tests := map[Placement]string{
		PlaceRandom:    "random",
		PlaceHubs:      "hubs",
		PlacePeriphery: "periphery",
		Placement(42):  "Placement(42)",
	}
	for p, want := range tests {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestPlacementTargetsDegreeExtremes(t *testing.T) {
	honest, err := gen.BarabasiAlbert(400, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	degrees := honest.Degrees()
	sorted := make([]int, len(degrees))
	copy(sorted, degrees)
	sort.Ints(sorted)
	medianDeg := sorted[len(sorted)/2]

	hub, err := Inject(honest, AttackConfig{
		SybilNodes: 50, AttackEdges: 10, Placement: PlaceHubs, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range hub.AttackEdges {
		if honest.Degree(e.U) <= medianDeg {
			t.Errorf("hub placement used endpoint %d with degree %d <= median %d",
				e.U, honest.Degree(e.U), medianDeg)
		}
	}

	per, err := Inject(honest, AttackConfig{
		SybilNodes: 50, AttackEdges: 10, Placement: PlacePeriphery, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range per.AttackEdges {
		if honest.Degree(e.U) > medianDeg {
			t.Errorf("periphery placement used endpoint %d with degree %d > median %d",
				e.U, honest.Degree(e.U), medianDeg)
		}
	}
}

func TestPlacementUnknownRejected(t *testing.T) {
	honest, err := gen.BarabasiAlbert(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Inject(honest, AttackConfig{
		SybilNodes: 10, AttackEdges: 2, Placement: 99, Seed: 1,
	}); err == nil {
		t.Error("Inject(unknown placement): want error")
	}
}

func TestPlacementPoolExhaustion(t *testing.T) {
	// With a 100-node graph the hub pool has 5 nodes; asking for more
	// distinct attack edges than pool × sybils must fail cleanly.
	honest, err := gen.BarabasiAlbert(100, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Inject(honest, AttackConfig{
		SybilNodes: 2, AttackEdges: 11, Placement: PlaceHubs, Seed: 1,
	}); err == nil {
		t.Error("Inject(exhausted hub pool): want error")
	}
}

func TestPlacementDefaultIsRandom(t *testing.T) {
	honest, err := gen.BarabasiAlbert(200, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Inject(honest, AttackConfig{SybilNodes: 20, AttackEdges: 5, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Inject(honest, AttackConfig{SybilNodes: 20, AttackEdges: 5, Placement: PlaceRandom, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.AttackEdges {
		if a.AttackEdges[i] != b.AttackEdges[i] {
			t.Fatalf("default placement differs from explicit PlaceRandom at edge %d", i)
		}
	}
	_ = graph.Edge{}
}
