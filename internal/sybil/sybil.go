// Package sybil provides the shared substrate for the social-network-based
// Sybil defenses the paper studies (§II): the attack model (a sybil region
// wired to the honest region through a limited number of attack edges),
// evaluation metrics (honest acceptance rate and sybils accepted per
// attack edge, the two columns of Table II), and the random-route
// primitive with per-node permutation routing tables that SybilGuard and
// SybilLimit are built on.
package sybil

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

// SybilTopology selects how the adversary wires the sybil region.
type SybilTopology int

const (
	// TopologyScaleFree wires sybils as a Barabási–Albert graph — the
	// adversary mimics a real social network.
	TopologyScaleFree SybilTopology = iota + 1
	// TopologyRandom wires sybils as a sparse Erdős–Rényi graph.
	TopologyRandom
	// TopologyClique wires sybils as a complete graph (small regions
	// only: the clique has |S|² edges).
	TopologyClique
)

// Placement selects which honest nodes the adversary targets with attack
// edges — the "formal models of attackers" the paper's §VI calls for.
type Placement int

const (
	// PlaceRandom picks honest endpoints uniformly (the paper's Table II
	// setting: "attackers are selected randomly").
	PlaceRandom Placement = iota + 1
	// PlaceHubs targets the highest-degree honest nodes: a social
	// engineering adversary going after well-connected users. Hubs sit
	// in the graph's core, so tickets, routes, and votes reach the sybil
	// region much more easily.
	PlaceHubs
	// PlacePeriphery targets the lowest-degree honest nodes: an
	// opportunistic adversary befriending careless users at the fringe.
	PlacePeriphery
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case PlaceRandom:
		return "random"
	case PlaceHubs:
		return "hubs"
	case PlacePeriphery:
		return "periphery"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// AttackConfig parameterizes an attack injection.
type AttackConfig struct {
	// SybilNodes is the number of sybil identities created.
	SybilNodes int
	// AttackEdges is the number of edges the adversary manages to
	// establish to honest nodes.
	AttackEdges int
	// Topology wires the sybil region; defaults to TopologyScaleFree.
	Topology SybilTopology
	// Placement selects the honest endpoints of attack edges; defaults
	// to PlaceRandom.
	Placement Placement
	// Seed makes the attack deterministic.
	Seed int64
}

// Attack is an honest social graph with an injected sybil region. Node IDs
// [0, HonestNodes) are the original honest nodes; [HonestNodes, n) are
// sybils.
type Attack struct {
	// Honest is the original graph.
	Honest *graph.Graph
	// Combined is the graph the defense actually sees: honest region,
	// sybil region, and the attack edges between them.
	Combined *graph.Graph
	// HonestNodes is the size of the honest region.
	HonestNodes int
	// AttackEdges are the edges crossing the honest/sybil boundary.
	AttackEdges []graph.Edge
}

// NumSybil returns the number of sybil identities.
func (a *Attack) NumSybil() int { return a.Combined.NumNodes() - a.HonestNodes }

// IsHonest reports whether v is an original honest node.
func (a *Attack) IsHonest(v graph.NodeID) bool { return int(v) < a.HonestNodes }

// Inject builds an Attack on top of an honest graph.
func Inject(honest *graph.Graph, cfg AttackConfig) (*Attack, error) {
	hn := honest.NumNodes()
	if hn < 2 {
		return nil, fmt.Errorf("sybil: honest graph too small (%d nodes)", hn)
	}
	if cfg.SybilNodes < 1 {
		return nil, fmt.Errorf("sybil: need >= 1 sybil node, got %d", cfg.SybilNodes)
	}
	if cfg.AttackEdges < 1 {
		return nil, fmt.Errorf("sybil: need >= 1 attack edge, got %d", cfg.AttackEdges)
	}
	if cfg.AttackEdges > hn*cfg.SybilNodes {
		return nil, fmt.Errorf("sybil: %d attack edges exceed possible %d", cfg.AttackEdges, hn*cfg.SybilNodes)
	}
	topo := cfg.Topology
	if topo == 0 {
		topo = TopologyScaleFree
	}

	region, err := sybilRegion(cfg.SybilNodes, topo, cfg.Seed)
	if err != nil {
		return nil, err
	}

	n := hn + cfg.SybilNodes
	b := graph.NewBuilder(n)
	for _, e := range honest.Edges() {
		b.AddEdgeSafe(e.U, e.V)
	}
	for _, e := range region.Edges() {
		b.AddEdgeSafe(e.U+graph.NodeID(hn), e.V+graph.NodeID(hn))
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	pickHonest, err := honestPicker(honest, cfg.Placement, rng)
	if err != nil {
		return nil, err
	}
	seen := make(map[graph.Edge]struct{}, cfg.AttackEdges)
	attackEdges := make([]graph.Edge, 0, cfg.AttackEdges)
	attempts := 0
	maxAttempts := 100*cfg.AttackEdges + 1000
	for len(attackEdges) < cfg.AttackEdges {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("sybil: could not place %d distinct attack edges with placement %v (target pool too small)",
				cfg.AttackEdges, cfg.Placement)
		}
		h := pickHonest()
		s := graph.NodeID(hn + rng.Intn(cfg.SybilNodes))
		e := graph.Edge{U: h, V: s}
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		attackEdges = append(attackEdges, e)
		b.AddEdgeSafe(h, s)
	}
	return &Attack{
		Honest:      honest,
		Combined:    b.Build(),
		HonestNodes: hn,
		AttackEdges: attackEdges,
	}, nil
}

// honestPicker returns a sampler over honest endpoints implementing the
// configured placement. Targeted placements concentrate draws on the top
// (or bottom) 5% of nodes by degree, sampling within that pool.
func honestPicker(honest *graph.Graph, placement Placement, rng *rand.Rand) (func() graph.NodeID, error) {
	hn := honest.NumNodes()
	if placement == 0 {
		placement = PlaceRandom
	}
	switch placement {
	case PlaceRandom:
		return func() graph.NodeID { return graph.NodeID(rng.Intn(hn)) }, nil
	case PlaceHubs, PlacePeriphery:
		order := make([]graph.NodeID, hn)
		for i := range order {
			order[i] = graph.NodeID(i)
		}
		sort.Slice(order, func(i, j int) bool {
			di, dj := honest.Degree(order[i]), honest.Degree(order[j])
			if di != dj {
				if placement == PlaceHubs {
					return di > dj
				}
				return di < dj
			}
			return order[i] < order[j]
		})
		pool := hn / 20
		if pool < 1 {
			pool = 1
		}
		targets := order[:pool]
		return func() graph.NodeID { return targets[rng.Intn(len(targets))] }, nil
	default:
		return nil, fmt.Errorf("sybil: unknown placement %d", placement)
	}
}

func sybilRegion(n int, topo SybilTopology, seed int64) (*graph.Graph, error) {
	switch topo {
	case TopologyScaleFree:
		if n <= 3 {
			return gen.Complete(n)
		}
		g, err := gen.BarabasiAlbert(n, 3, seed)
		if err != nil {
			return nil, fmt.Errorf("sybil region: %w", err)
		}
		return g, nil
	case TopologyRandom:
		if n < 2 {
			return gen.Complete(n)
		}
		m := int64(3 * n)
		if max := int64(n) * int64(n-1) / 2; m > max {
			m = max
		}
		g, err := gen.GNM(n, m, seed)
		if err != nil {
			return nil, fmt.Errorf("sybil region: %w", err)
		}
		return g, nil
	case TopologyClique:
		if n > 2000 {
			return nil, fmt.Errorf("sybil: clique region with %d nodes is too dense; use another topology", n)
		}
		return gen.Complete(n)
	default:
		return nil, fmt.Errorf("sybil: unknown topology %d", topo)
	}
}

// Metrics are the Table II evaluation quantities for one defense run.
type Metrics struct {
	// HonestAccepted and HonestTotal count the honest region (excluding
	// the verifier itself when the defense excludes it).
	HonestAccepted int
	HonestTotal    int
	// SybilAccepted counts accepted sybil identities.
	SybilAccepted int
	// AttackEdges is the number of attack edges in the run.
	AttackEdges int
}

// HonestAcceptRate returns the fraction of honest nodes accepted.
func (m Metrics) HonestAcceptRate() float64 {
	if m.HonestTotal == 0 {
		return 0
	}
	return float64(m.HonestAccepted) / float64(m.HonestTotal)
}

// SybilsPerAttackEdge returns accepted sybils normalized by attack edges —
// the guarantee unit every defense in the literature reports.
func (m Metrics) SybilsPerAttackEdge() float64 {
	if m.AttackEdges == 0 {
		return 0
	}
	return float64(m.SybilAccepted) / float64(m.AttackEdges)
}

// Evaluate computes Metrics from a per-node acceptance vector over the
// combined graph. The verifier is excluded from the honest tally.
func Evaluate(a *Attack, accepted []bool, verifier graph.NodeID) (Metrics, error) {
	if len(accepted) != a.Combined.NumNodes() {
		return Metrics{}, fmt.Errorf("sybil: acceptance vector length %d, want %d",
			len(accepted), a.Combined.NumNodes())
	}
	if !a.Combined.Valid(verifier) {
		return Metrics{}, fmt.Errorf("sybil: verifier %d out of range", verifier)
	}
	m := Metrics{AttackEdges: len(a.AttackEdges)}
	for v, ok := range accepted {
		node := graph.NodeID(v)
		if node == verifier {
			continue
		}
		if a.IsHonest(node) {
			m.HonestTotal++
			if ok {
				m.HonestAccepted++
			}
		} else if ok {
			m.SybilAccepted++
		}
	}
	return m, nil
}

// ErrNoRoute is returned by route operations on nodes without edges.
var ErrNoRoute = errors.New("sybil: node has no edges")

// RouteTable holds the per-node random permutation routing tables of
// SybilGuard/SybilLimit: a node with degree d stores a permutation π of
// its incident edge slots, and a route entering through edge slot i leaves
// through slot π(i). Routes are therefore deterministic given entry point
// and convergent (two routes entering a node on the same edge merge).
type RouteTable struct {
	g *graph.Graph
	// perm[v] is a permutation of [0, deg(v)).
	perm [][]int32
}

// NewRouteTable draws one random routing table for every node.
func NewRouteTable(g *graph.Graph, seed int64) *RouteTable {
	rng := rand.New(rand.NewSource(seed))
	perm := make([][]int32, g.NumNodes())
	for v := range perm {
		d := g.Degree(graph.NodeID(v))
		p := make([]int32, d)
		for i := range p {
			p[i] = int32(i)
		}
		rng.Shuffle(d, func(i, j int) { p[i], p[j] = p[j], p[i] })
		perm[v] = p
	}
	return &RouteTable{g: g, perm: perm}
}

// edgeSlot returns the index of neighbor u in v's adjacency list.
func (rt *RouteTable) edgeSlot(v, u graph.NodeID) (int32, error) {
	ns := rt.g.Neighbors(v)
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ns) && ns[lo] == u {
		return int32(lo), nil
	}
	return 0, fmt.Errorf("sybil: (%d,%d) is not an edge", v, u)
}

// Route performs a random route of `length` hops from start, leaving first
// through startSlot (an index into start's adjacency list). It returns the
// sequence of directed edges traversed, each encoded as [from, to].
func (rt *RouteTable) Route(start graph.NodeID, startSlot int, length int) ([][2]graph.NodeID, error) {
	if !rt.g.Valid(start) {
		return nil, fmt.Errorf("sybil: route start %d out of range", start)
	}
	d := rt.g.Degree(start)
	if d == 0 {
		return nil, ErrNoRoute
	}
	if startSlot < 0 || startSlot >= d {
		return nil, fmt.Errorf("sybil: start slot %d out of range [0,%d)", startSlot, d)
	}
	if length < 1 {
		return nil, fmt.Errorf("sybil: route length %d must be >= 1", length)
	}
	hops := make([][2]graph.NodeID, 0, length)
	cur := start
	next := rt.g.Neighbors(start)[startSlot]
	hops = append(hops, [2]graph.NodeID{cur, next})
	for len(hops) < length {
		inSlot, err := rt.edgeSlot(next, cur)
		if err != nil {
			return nil, err
		}
		outSlot := rt.perm[next][inSlot]
		cur, next = next, rt.g.Neighbors(next)[outSlot]
		hops = append(hops, [2]graph.NodeID{cur, next})
	}
	return hops, nil
}

// Tail returns the last directed edge of the route from start via
// startSlot — SybilLimit's intersection primitive.
func (rt *RouteTable) Tail(start graph.NodeID, startSlot, length int) ([2]graph.NodeID, error) {
	hops, err := rt.Route(start, startSlot, length)
	if err != nil {
		return [2]graph.NodeID{}, err
	}
	return hops[len(hops)-1], nil
}
