package sumup

import (
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
)

func TestRunCollectsHonestBoundsSybil(t *testing.T) {
	honest, err := gen.BarabasiAlbert(300, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 100, AttackEdges: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(a, 0, Config{Tickets: 400})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sybil.Evaluate(a, res.Collected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hr := m.HonestAcceptRate(); hr < 0.5 {
		t.Errorf("honest votes collected = %v, want >= 0.5", hr)
	}
	// Sybil flow is cut by the attack edges: at most 1 + envelope tickets
	// per attack edge; with the collector far from the attack edges the
	// envelope contribution stays small.
	if m.SybilAccepted > 12*m.AttackEdges {
		t.Errorf("sybil votes = %d for %d attack edges, want tightly bounded",
			m.SybilAccepted, m.AttackEdges)
	}
	sybilRate := float64(m.SybilAccepted) / float64(a.NumSybil())
	if sybilRate >= m.HonestAcceptRate() {
		t.Errorf("sybil rate %v >= honest rate %v", sybilRate, m.HonestAcceptRate())
	}
}

func TestSybilVotesScaleWithAttackEdges(t *testing.T) {
	honest, err := gen.BarabasiAlbert(300, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	few, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 100, AttackEdges: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	many, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 100, AttackEdges: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rFew, err := Run(few, 0, Config{Tickets: 400})
	if err != nil {
		t.Fatal(err)
	}
	rMany, err := Run(many, 0, Config{Tickets: 400})
	if err != nil {
		t.Fatal(err)
	}
	mFew, err := sybil.Evaluate(few, rFew.Collected, 0)
	if err != nil {
		t.Fatal(err)
	}
	mMany, err := sybil.Evaluate(many, rMany.Collected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mMany.SybilAccepted <= mFew.SybilAccepted {
		t.Errorf("sybil votes did not grow with attack edges: %d (g=2) vs %d (g=30)",
			mFew.SybilAccepted, mMany.SybilAccepted)
	}
}

func TestMaxVotesCap(t *testing.T) {
	honest, err := gen.BarabasiAlbert(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 10, AttackEdges: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(a, 0, Config{Tickets: 100, MaxVotes: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCollected != 25 {
		t.Errorf("TotalCollected = %d, want capped at 25", res.TotalCollected)
	}
}

func TestFlowRespectsCollectorCut(t *testing.T) {
	// On a star with the hub as collector, every leaf's vote has a
	// dedicated unit edge: all collected.
	g, err := gen.Star(12)
	if err != nil {
		t.Fatal(err)
	}
	a := &sybil.Attack{Honest: g, Combined: g, HonestNodes: 12}
	res, err := Run(a, 0, Config{Tickets: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCollected != 11 {
		t.Errorf("TotalCollected = %d, want 11", res.TotalCollected)
	}
	// On a path with the collector at one end, the single edge out of the
	// collector bounds total flow by 1 + tickets.
	p, err := gen.Path(30)
	if err != nil {
		t.Fatal(err)
	}
	ap := &sybil.Attack{Honest: p, Combined: p, HonestNodes: 30}
	res, err = Run(ap, 0, Config{Tickets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCollected > 5 {
		t.Errorf("path flow = %d, exceeds cut bound 5", res.TotalCollected)
	}
	if res.TotalCollected < 1 {
		t.Errorf("path flow = %d, want >= 1", res.TotalCollected)
	}
}

func TestRunValidation(t *testing.T) {
	honest, err := gen.BarabasiAlbert(50, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 5, AttackEdges: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(a, 9999, Config{}); err == nil {
		t.Error("Run(bad collector): want error")
	}
	if _, err := Run(a, 0, Config{Tickets: -1}); err == nil {
		t.Error("Run(negative tickets): want error")
	}
	if _, err := Run(a, 0, Config{MaxVotes: -1}); err == nil {
		t.Error("Run(negative max votes): want error")
	}
	b := graph.NewBuilder(3)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	iso := &sybil.Attack{Honest: g, Combined: g, HonestNodes: 3}
	if _, err := Run(iso, 2, Config{}); err == nil {
		t.Error("Run(isolated collector): want error")
	}
}

func TestEnvelopeTicketConservation(t *testing.T) {
	g, err := gen.BarabasiAlbert(80, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := buildEnvelope(g, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Envelope capacity points toward the collector and never exceeds the
	// ticket budget in total per level cut.
	var total int64
	for de, c := range fn.envelope {
		if c < 0 {
			t.Fatalf("negative envelope on %v", de)
		}
		total += c
	}
	if total == 0 {
		t.Error("envelope empty despite 200 tickets")
	}
	// Tickets leaving the collector are at most t.
	var fromCollector int64
	for _, u := range g.Neighbors(0) {
		fromCollector += fn.envelope[dirEdge{from: u, to: 0}]
	}
	if fromCollector > 200 {
		t.Errorf("collector sent %d tickets, budget 200", fromCollector)
	}
}
