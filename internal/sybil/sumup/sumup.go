// Package sumup implements the SumUp sybil-resilient vote aggregation
// system of Tran et al. (NSDI 2009), one of the mixing-time-based designs
// whose assumptions the paper examines.
//
// SumUp collects votes as a flow toward a trusted vote collector through
// an *adaptive vote-flow envelope*: the collector hands out t tickets that
// propagate outward level by level (each node keeps one and forwards the
// rest to the next BFS level), and a directed link toward the collector
// gets capacity 1 + the tickets that flowed over it. Votes are then
// collected by computing a max-flow from the voters to the collector
// under those capacities. Because the envelope's extra capacity is
// concentrated near the collector and attack edges have base capacity 1,
// the sybil region can push at most ~1 vote per attack edge plus whatever
// tickets happen to reach the attack edges.
package sumup

import (
	"fmt"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
)

// Config parameterizes a SumUp run.
type Config struct {
	// Tickets is t, the expected number of votes to collect. Defaults to
	// n/4 when 0.
	Tickets int
	// MaxVotes caps collected votes (the collector stops augmenting after
	// this much flow). 0 means unlimited.
	MaxVotes int
}

func (c *Config) fill(n int) error {
	if c.Tickets == 0 {
		c.Tickets = n / 4
		if c.Tickets < 1 {
			c.Tickets = 1
		}
	}
	if c.Tickets < 1 {
		return fmt.Errorf("sumup: tickets %d must be >= 1", c.Tickets)
	}
	if c.MaxVotes < 0 {
		return fmt.Errorf("sumup: max votes %d must be >= 0", c.MaxVotes)
	}
	return nil
}

// Result reports which voters' votes were collected.
type Result struct {
	// Collected[v] reports whether node v's vote reached the collector.
	Collected []bool
	// TotalCollected is the number of collected votes (the flow value).
	TotalCollected int
}

// dirEdge is a directed edge of the flow network.
type dirEdge struct{ from, to graph.NodeID }

// flowNetwork is the residual network over the combined graph: every
// directed edge has base capacity 1 plus its vote-envelope capacity.
type flowNetwork struct {
	g        *graph.Graph
	envelope map[dirEdge]int64
	used     map[dirEdge]int64
}

func (fn *flowNetwork) residual(from, to graph.NodeID) int64 {
	de := dirEdge{from: from, to: to}
	c := fn.envelope[de] + 1
	return c - fn.used[de] + fn.used[dirEdge{from: to, to: from}]
}

func (fn *flowNetwork) push(from, to graph.NodeID) {
	back := dirEdge{from: to, to: from}
	if fn.used[back] > 0 {
		fn.used[back]--
		return
	}
	fn.used[dirEdge{from: from, to: to}]++
}

// Run collects one vote from every node (except the collector) and
// reports whose votes were accepted. Interpreting "vote collected" as
// "identity accepted" yields the usual sybil-defense metrics.
func Run(a *sybil.Attack, collector graph.NodeID, cfg Config) (*Result, error) {
	g := a.Combined
	n := g.NumNodes()
	if err := cfg.fill(n); err != nil {
		return nil, err
	}
	if !g.Valid(collector) {
		return nil, fmt.Errorf("sumup: collector %d out of range", collector)
	}
	if g.Degree(collector) == 0 {
		return nil, fmt.Errorf("sumup: collector %d is isolated", collector)
	}

	fn, err := buildEnvelope(g, collector, cfg.Tickets)
	if err != nil {
		return nil, err
	}

	collected := make([]bool, n)
	total := 0
	prev := make([]graph.NodeID, n)
	visited := make([]bool, n)
	queue := make([]graph.NodeID, 0, n)

	// Repeat passes until a whole pass adds no flow: pushing one voter's
	// flow can open residual paths for voters that failed earlier, and
	// with integer capacities this terminates at the exact max flow.
	progress := true
	for progress {
		progress = false
		for v := graph.NodeID(0); int(v) < n; v++ {
			if v == collector || g.Degree(v) == 0 || collected[v] {
				continue
			}
			if cfg.MaxVotes > 0 && total >= cfg.MaxVotes {
				return &Result{Collected: collected, TotalCollected: total}, nil
			}
			if !augment(fn, v, collector, prev, visited, queue) {
				continue
			}
			collected[v] = true
			total++
			progress = true
		}
	}
	return &Result{Collected: collected, TotalCollected: total}, nil
}

// buildEnvelope runs the level-based ticket distribution and returns the
// capacity network.
func buildEnvelope(g *graph.Graph, collector graph.NodeID, t int) (*flowNetwork, error) {
	bfsRes, err := graph.BFS(g, collector)
	if err != nil {
		return nil, fmt.Errorf("sumup: bfs: %w", err)
	}
	n := g.NumNodes()
	dist := bfsRes.Dist

	fn := &flowNetwork{
		g:        g,
		envelope: make(map[dirEdge]int64),
		used:     make(map[dirEdge]int64),
	}
	tickets := make([]int64, n)
	tickets[collector] = int64(t) + 1

	maxLevel := int32(0)
	for v := 0; v < n; v++ {
		if dist[v] > maxLevel {
			maxLevel = dist[v]
		}
	}
	buckets := make([][]graph.NodeID, maxLevel+1)
	for v := graph.NodeID(0); int(v) < n; v++ {
		if dist[v] >= 0 {
			buckets[dist[v]] = append(buckets[dist[v]], v)
		}
	}
	var fwd []graph.NodeID
	for _, bucket := range buckets {
		for _, v := range bucket {
			have := tickets[v]
			if have <= 0 {
				continue
			}
			have-- // the node keeps one ticket
			if have == 0 {
				continue
			}
			fwd = fwd[:0]
			for _, u := range g.Neighbors(v) {
				if dist[u] == dist[v]+1 {
					fwd = append(fwd, u)
				}
			}
			if len(fwd) == 0 {
				continue
			}
			share := have / int64(len(fwd))
			rem := have % int64(len(fwd))
			for i, u := range fwd {
				sent := share
				if int64(i) < rem {
					sent++
				}
				if sent == 0 {
					continue
				}
				tickets[u] += sent
				// Vote flow runs u -> v (toward the collector); the
				// envelope capacity rides on that direction.
				fn.envelope[dirEdge{from: u, to: v}] += sent
			}
		}
	}
	return fn, nil
}

// augment finds one unit augmenting path from voter to collector in the
// residual network and applies it. It reports whether a path was found.
func augment(fn *flowNetwork, voter, collector graph.NodeID, prev []graph.NodeID, visited []bool, queue []graph.NodeID) bool {
	for i := range visited {
		visited[i] = false
		prev[i] = -1
	}
	queue = append(queue[:0], voter)
	visited[voter] = true
	found := false
	for head := 0; head < len(queue) && !found; head++ {
		x := queue[head]
		for _, u := range fn.g.Neighbors(x) {
			if visited[u] || fn.residual(x, u) <= 0 {
				continue
			}
			prev[u] = x
			if u == collector {
				found = true
				break
			}
			visited[u] = true
			queue = append(queue, u)
		}
	}
	if !found {
		return false
	}
	for cur := collector; cur != voter; cur = prev[cur] {
		fn.push(prev[cur], cur)
	}
	return true
}
