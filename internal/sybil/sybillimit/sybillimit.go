// Package sybillimit implements the SybilLimit verification protocol of
// Yu et al. (Oakland 2008), the near-optimal successor to SybilGuard whose
// end-to-end experiments the paper cites as indirect evidence that social
// graphs mix "well enough".
//
// SybilLimit runs r = r₀·√m independent instances. In each instance every
// node performs one random route of length w = O(log n) (the graph's
// mixing time) over that instance's permutation routing tables and
// registers its *tail* — the final directed edge. By the birthday paradox
// the r tails of an honest suspect intersect the r tails of an honest
// verifier with constant probability (r² pairs, each matching w.p.
// ~1/(2m)), while sybil tails stay trapped behind the attack edges. The
// balance condition additionally caps how many suspects any single
// verifier tail may admit, which is what limits accepted sybils to
// O(log n) per attack edge.
package sybillimit

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
)

// Config parameterizes a SybilLimit run.
type Config struct {
	// Instances is r. Defaults to ceil(3·√m) when 0.
	Instances int
	// RouteLength is w. Defaults to 2·ceil(log2 n) when 0; it should be
	// at least the graph's mixing time for the guarantees to hold, which
	// is exactly the assumption the paper investigates.
	RouteLength int
	// BalanceFactor is h in the balance bound b = h·max(log r, A/r) where
	// A is the number of suspects accepted so far. Defaults to 2.
	BalanceFactor float64
	// Seed drives the per-instance routing tables and start-edge picks.
	Seed int64
}

func (c *Config) fill(n int, m int64) error {
	if c.Instances == 0 {
		c.Instances = int(math.Ceil(3 * math.Sqrt(float64(m))))
	}
	if c.Instances < 1 {
		return fmt.Errorf("sybillimit: instances %d must be >= 1", c.Instances)
	}
	if c.RouteLength == 0 {
		c.RouteLength = 2 * int(math.Ceil(math.Log2(float64(n)+1)))
	}
	if c.RouteLength < 1 {
		return fmt.Errorf("sybillimit: route length %d must be >= 1", c.RouteLength)
	}
	if c.BalanceFactor == 0 {
		c.BalanceFactor = 2
	}
	if c.BalanceFactor <= 0 {
		return fmt.Errorf("sybillimit: balance factor %v must be > 0", c.BalanceFactor)
	}
	return nil
}

// tailKey identifies a directed edge.
type tailKey struct{ from, to graph.NodeID }

// Result carries per-node acceptance plus diagnostic counters.
type Result struct {
	Accepted []bool
	// IntersectionFailures counts suspects rejected because no tail
	// intersected; BalanceFailures counts suspects rejected by the
	// balance condition despite intersecting.
	IntersectionFailures int
	BalanceFailures      int
}

// Run evaluates every node from the verifier's perspective.
func Run(a *sybil.Attack, verifier graph.NodeID, cfg Config) (*Result, error) {
	g := a.Combined
	if err := cfg.fill(g.NumNodes(), g.NumEdges()); err != nil {
		return nil, err
	}
	if !g.Valid(verifier) {
		return nil, fmt.Errorf("sybillimit: verifier %d out of range", verifier)
	}
	if g.Degree(verifier) == 0 {
		return nil, fmt.Errorf("sybillimit: verifier %d is isolated", verifier)
	}

	n := g.NumNodes()
	rng := rand.New(rand.NewSource(cfg.Seed))
	// tails[i][v] is node v's tail in instance i.
	tails := make([][]tailKey, cfg.Instances)
	for i := range tails {
		rt := sybil.NewRouteTable(g, cfg.Seed+int64(i)+1)
		inst := make([]tailKey, n)
		for v := graph.NodeID(0); int(v) < n; v++ {
			d := g.Degree(v)
			if d == 0 {
				inst[v] = tailKey{from: -1, to: -1}
				continue
			}
			tail, err := rt.Tail(v, rng.Intn(d), cfg.RouteLength)
			if err != nil {
				return nil, fmt.Errorf("sybillimit: tail of %d in instance %d: %w", v, i, err)
			}
			inst[v] = tailKey{from: tail[0], to: tail[1]}
		}
		tails[i] = inst
	}

	// Verifier tail set with per-tail load counters (balance condition).
	type slot struct{ load int }
	verifierTails := make(map[tailKey]*slot, cfg.Instances)
	for i := range tails {
		tk := tails[i][verifier]
		if tk.from >= 0 {
			if _, ok := verifierTails[tk]; !ok {
				verifierTails[tk] = &slot{}
			}
		}
	}

	res := &Result{Accepted: make([]bool, n)}
	res.Accepted[verifier] = true
	acceptedSoFar := 0
	r := float64(cfg.Instances)
	// Evaluate suspects in a seeded random order: the balance condition
	// is order-dependent, and arrival order is adversarial in theory but
	// random in the measurement setting.
	order := rng.Perm(n)
	for _, vi := range order {
		s := graph.NodeID(vi)
		if s == verifier || g.Degree(s) == 0 {
			continue
		}
		var best *slot
		for i := range tails {
			tk := tails[i][s]
			if tk.from < 0 {
				continue
			}
			sl, ok := verifierTails[tk]
			if !ok {
				continue
			}
			if best == nil || sl.load < best.load {
				best = sl
			}
		}
		if best == nil {
			res.IntersectionFailures++
			continue
		}
		bound := cfg.BalanceFactor * math.Max(math.Log(r+1), float64(acceptedSoFar)/r)
		if float64(best.load+1) > bound {
			res.BalanceFailures++
			continue
		}
		best.load++
		acceptedSoFar++
		res.Accepted[s] = true
	}
	return res, nil
}
