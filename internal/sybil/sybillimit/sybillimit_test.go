package sybillimit

import (
	"math"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
)

func TestRunSeparatesHonestFromSybil(t *testing.T) {
	honest, err := gen.BarabasiAlbert(400, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 200, AttackEdges: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(a, 0, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sybil.Evaluate(a, res.Accepted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hr := m.HonestAcceptRate(); hr < 0.7 {
		t.Errorf("honest acceptance = %v, want >= 0.7", hr)
	}
	sybilRate := float64(m.SybilAccepted) / float64(a.NumSybil())
	if sybilRate >= m.HonestAcceptRate()/2 {
		t.Errorf("sybil rate %v vs honest %v: insufficient separation", sybilRate, m.HonestAcceptRate())
	}
	// SybilLimit's guarantee: O(w) = O(log n) accepted sybils per attack
	// edge, with constant ≈ r₀²/2 = 4.5 at the default r = 3√m.
	w := 2 * int(math.Ceil(math.Log2(float64(a.Combined.NumNodes())+1)))
	if spe := m.SybilsPerAttackEdge(); spe > 4.5*float64(w) {
		t.Errorf("sybils per attack edge = %v, exceeds (r₀²/2)·w = %v", spe, 4.5*float64(w))
	}
}

func TestShortRoutesHurtHonestAcceptance(t *testing.T) {
	// With w far below the mixing time, honest tails are not uniform and
	// the intersection probability collapses — this is exactly why the
	// paper argues the mixing time must be *measured*, not assumed.
	honest, err := gen.BarabasiAlbert(400, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 40, AttackEdges: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Run(a, 0, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	short, err := Run(a, 0, Config{RouteLength: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mLong, err := sybil.Evaluate(a, long.Accepted, 0)
	if err != nil {
		t.Fatal(err)
	}
	mShort, err := sybil.Evaluate(a, short.Accepted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mShort.HonestAcceptRate() >= mLong.HonestAcceptRate() {
		t.Errorf("short routes accept %v >= long routes %v",
			mShort.HonestAcceptRate(), mLong.HonestAcceptRate())
	}
}

func TestBalanceConditionCapsAcceptance(t *testing.T) {
	honest, err := gen.BarabasiAlbert(300, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 30, AttackEdges: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A tiny balance factor should reject many honest nodes via balance
	// failures, demonstrating the condition is active.
	strict, err := Run(a, 0, Config{BalanceFactor: 0.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Run(a, 0, Config{BalanceFactor: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if strict.BalanceFailures == 0 {
		t.Error("strict balance factor produced no balance failures")
	}
	if loose.BalanceFailures >= strict.BalanceFailures {
		t.Errorf("loose balance failures %d >= strict %d",
			loose.BalanceFailures, strict.BalanceFailures)
	}
	mStrict, err := sybil.Evaluate(a, strict.Accepted, 0)
	if err != nil {
		t.Fatal(err)
	}
	mLoose, err := sybil.Evaluate(a, loose.Accepted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mStrict.HonestAccepted > mLoose.HonestAccepted {
		t.Errorf("strict balance accepted more honest nodes (%d) than loose (%d)",
			mStrict.HonestAccepted, mLoose.HonestAccepted)
	}
}

func TestRunValidation(t *testing.T) {
	honest, err := gen.BarabasiAlbert(100, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 10, AttackEdges: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(a, 9999, Config{}); err == nil {
		t.Error("Run(bad verifier): want error")
	}
	for _, cfg := range []Config{
		{Instances: -1}, {RouteLength: -1}, {BalanceFactor: -1},
	} {
		if _, err := Run(a, 0, cfg); err == nil {
			t.Errorf("Run(%+v): want error", cfg)
		}
	}
}

func TestIsolatedNodesSkipped(t *testing.T) {
	b := graph.NewBuilder(8)
	for _, e := range []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}, {U: 0, V: 2}, {U: 1, V: 3}} {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build() // nodes 4..7 isolated
	a := &sybil.Attack{Honest: g, Combined: g, HonestNodes: 8}
	res, err := Run(a, 0, Config{Instances: 10, RouteLength: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := 4; v < 8; v++ {
		if res.Accepted[v] {
			t.Errorf("isolated node %d accepted", v)
		}
	}
	if _, err := Run(a, 4, Config{}); err == nil {
		t.Error("Run(isolated verifier): want error")
	}
}

func TestRunDeterministic(t *testing.T) {
	honest, err := gen.BarabasiAlbert(200, 3, 12)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 20, AttackEdges: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Instances: 60, RouteLength: 12, Seed: 5}
	r1, err := Run(a, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(a, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.Accepted {
		if r1.Accepted[v] != r2.Accepted[v] {
			t.Fatalf("acceptance differs at node %d", v)
		}
	}
}
