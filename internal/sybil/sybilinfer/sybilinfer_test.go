package sybilinfer

import (
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
)

func TestRunSeparatesHonestFromSybil(t *testing.T) {
	honest, err := gen.BarabasiAlbert(300, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 60, AttackEdges: 3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(a, 0, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sybil.Evaluate(a, res.Accepted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hr := m.HonestAcceptRate(); hr < 0.7 {
		t.Errorf("honest acceptance = %v, want >= 0.7", hr)
	}
	sybilRate := float64(m.SybilAccepted) / float64(a.NumSybil())
	if sybilRate > 0.5 {
		t.Errorf("sybil acceptance rate = %v, want <= 0.5", sybilRate)
	}
	if sybilRate >= m.HonestAcceptRate() {
		t.Errorf("sybil rate %v >= honest rate %v", sybilRate, m.HonestAcceptRate())
	}
}

func TestMarginalsInUnitInterval(t *testing.T) {
	honest, err := gen.BarabasiAlbert(120, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 20, AttackEdges: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(a, 5, Config{BurnIn: 500, Samples: 50, Thin: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for v, p := range res.Marginal {
		if p < 0 || p > 1 {
			t.Fatalf("marginal[%d] = %v out of [0,1]", v, p)
		}
	}
	if !res.Accepted[5] {
		t.Error("verifier not accepted")
	}
	if res.Marginal[5] < 0.9 {
		t.Errorf("verifier marginal = %v, want >= 0.9 (pinned in X)", res.Marginal[5])
	}
}

func TestRunValidation(t *testing.T) {
	honest, err := gen.BarabasiAlbert(60, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 10, AttackEdges: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(a, 9999, Config{}); err == nil {
		t.Error("Run(bad verifier): want error")
	}
	for _, cfg := range []Config{
		{WalksPerNode: -1}, {WalkLength: -1}, {BurnIn: -1},
		{Samples: -1}, {Thin: -1}, {Threshold: 1.5},
	} {
		if _, err := Run(a, 0, cfg); err == nil {
			t.Errorf("Run(%+v): want error", cfg)
		}
	}
}

func TestRunIsolatedVerifier(t *testing.T) {
	b := graph.NewBuilder(4)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	a := &sybil.Attack{Honest: g, Combined: g, HonestNodes: 4}
	if _, err := Run(a, 3, Config{}); err == nil {
		t.Error("Run(isolated verifier): want error")
	}
}

func TestRunDeterministic(t *testing.T) {
	honest, err := gen.BarabasiAlbert(100, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 15, AttackEdges: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{BurnIn: 1000, Samples: 40, Thin: 20, Seed: 9}
	r1, err := Run(a, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(a, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.Marginal {
		if r1.Marginal[v] != r2.Marginal[v] {
			t.Fatalf("marginals differ at node %d: %v vs %v", v, r1.Marginal[v], r2.Marginal[v])
		}
	}
}
