// Package sybilinfer implements the SybilInfer detection mechanism of
// Danezis and Mittal (NDSS 2009): Bayesian inference of the honest region
// from random-walk traces, sampled with Metropolis–Hastings.
//
// The generative model leans directly on the fast-mixing assumption the
// paper measures: a length-w walk starting inside the honest set X ends
// at a ~uniform node of X with (fixed model) probability P_stay, escapes
// to a ~uniform node of X̄ otherwise, and walks from X̄ land uniformly
// anywhere. For a candidate cut X with a internal and b escaping traces,
//
//	L(X) = (P_stay/|X|)^a · ((1-P_stay)/|X̄|)^b · (1/n)^(T-a-b),
//
// which rewards cuts whose internal traces stay internal. P_stay is a
// fixed parameter rather than the per-cut estimate a/(a+b): the adaptive
// estimate makes L nearly size-invariant, and the sampler then collapses
// onto the smallest set the honest-majority constraint allows. The
// sampler explores cuts by flipping one node at a time under an
// |X| >= n/2 constraint; each node's marginal acceptance probability is
// its frequency across retained samples.
package sybilinfer

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
	"github.com/trustnet/trustnet/internal/walk"
)

// Config parameterizes a SybilInfer run.
type Config struct {
	// WalksPerNode is the number of traces each node contributes.
	// Defaults to 20.
	WalksPerNode int
	// WalkLength is the trace length. Defaults to 2·ceil(log2 n).
	WalkLength int
	// BurnIn is the number of MH steps discarded. Defaults to 20·n.
	BurnIn int
	// Samples is the number of retained samples. Defaults to 200.
	Samples int
	// Thin is the number of MH steps between retained samples.
	// Defaults to n/2.
	Thin int
	// Threshold is the marginal probability above which a node is
	// accepted as honest. Defaults to 0.5.
	Threshold float64
	// PStay is the model probability that a walk from the honest set ends
	// inside it. It is a fixed model parameter, not estimated from the
	// candidate cut: an adaptive estimate makes the likelihood nearly
	// size-invariant and the sampler collapses onto the smallest allowed
	// set. Defaults to 0.9.
	PStay float64
	// Seed makes the run deterministic.
	Seed int64
}

func (c *Config) fill(n int) error {
	if c.WalksPerNode == 0 {
		c.WalksPerNode = 20
	}
	if c.WalksPerNode < 1 {
		return fmt.Errorf("sybilinfer: walks per node %d must be >= 1", c.WalksPerNode)
	}
	if c.WalkLength == 0 {
		c.WalkLength = 2 * int(math.Ceil(math.Log2(float64(n)+1)))
	}
	if c.WalkLength < 1 {
		return fmt.Errorf("sybilinfer: walk length %d must be >= 1", c.WalkLength)
	}
	if c.BurnIn == 0 {
		c.BurnIn = 40 * n
	}
	if c.BurnIn < 0 {
		return fmt.Errorf("sybilinfer: burn-in %d must be >= 0", c.BurnIn)
	}
	if c.Samples == 0 {
		c.Samples = 200
	}
	if c.Samples < 1 {
		return fmt.Errorf("sybilinfer: samples %d must be >= 1", c.Samples)
	}
	if c.Thin == 0 {
		c.Thin = n / 2
		if c.Thin < 1 {
			c.Thin = 1
		}
	}
	if c.Thin < 1 {
		return fmt.Errorf("sybilinfer: thinning %d must be >= 1", c.Thin)
	}
	if c.Threshold == 0 {
		c.Threshold = 0.5
	}
	if c.Threshold <= 0 || c.Threshold >= 1 {
		return fmt.Errorf("sybilinfer: threshold %v out of (0,1)", c.Threshold)
	}
	if c.PStay == 0 {
		c.PStay = 0.9
	}
	if c.PStay <= 0 || c.PStay >= 1 {
		return fmt.Errorf("sybilinfer: pstay %v out of (0,1)", c.PStay)
	}
	return nil
}

// Result carries per-node marginals and the acceptance vector.
type Result struct {
	// Marginal[v] is the fraction of retained samples containing v.
	Marginal []float64
	// Accepted[v] is Marginal[v] >= Threshold.
	Accepted []bool
}

// trace is one random-walk start/end observation.
type trace struct {
	start, end graph.NodeID
}

// initialCut seeds the sampler with the top 75% of nodes by
// degree-normalized lazy-walk probability from the verifier (always
// including the verifier itself).
func initialCut(g *graph.Graph, verifier graph.NodeID) ([]bool, int, error) {
	n := g.NumNodes()
	d, err := walk.NewDistribution(g, verifier, true)
	if err != nil {
		return nil, 0, err
	}
	steps := 3 * int(math.Ceil(math.Log2(float64(n)+1)))
	for i := 0; i < steps; i++ {
		d.Step()
	}
	probs := d.Probabilities()
	score := make([]float64, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		if deg := g.Degree(v); deg > 0 {
			score[v] = probs[v] / float64(deg)
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if score[order[i]] != score[order[j]] {
			return score[order[i]] > score[order[j]]
		}
		return order[i] < order[j]
	})
	take := (3 * n) / 4
	if take < 1 {
		take = 1
	}
	inX := make([]bool, n)
	size := 0
	for _, v := range order[:take] {
		inX[v] = true
		size++
	}
	if !inX[verifier] {
		inX[verifier] = true
		size++
	}
	return inX, size, nil
}

// Run infers the honest region of the attack's combined graph, anchored at
// an honest verifier (which is pinned inside X throughout sampling).
func Run(a *sybil.Attack, verifier graph.NodeID, cfg Config) (*Result, error) {
	g := a.Combined
	n := g.NumNodes()
	if err := cfg.fill(n); err != nil {
		return nil, err
	}
	if !g.Valid(verifier) {
		return nil, fmt.Errorf("sybilinfer: verifier %d out of range", verifier)
	}
	if g.Degree(verifier) == 0 {
		return nil, fmt.Errorf("sybilinfer: verifier %d is isolated", verifier)
	}

	// Collect traces.
	w := walk.NewWalker(g, cfg.Seed)
	var traces []trace
	startsAt := make([][]int32, n) // trace indices by start node
	endsAt := make([][]int32, n)   // trace indices by end node
	for v := graph.NodeID(0); int(v) < n; v++ {
		if g.Degree(v) == 0 {
			continue
		}
		for i := 0; i < cfg.WalksPerNode; i++ {
			end, err := w.Endpoint(v, cfg.WalkLength)
			if err != nil {
				return nil, fmt.Errorf("sybilinfer: trace from %d: %w", v, err)
			}
			idx := int32(len(traces))
			traces = append(traces, trace{start: v, end: end})
			startsAt[v] = append(startsAt[v], idx)
			endsAt[end] = append(endsAt[end], idx)
		}
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("sybilinfer: no traces (graph has no edges)")
	}

	// MH over cuts. X starts from the verifier's trust ranking — the top
	// 75% of nodes by degree-normalized probability of a short lazy walk
	// from the verifier. On an honest verifier this set is dominated by
	// the honest region, so the sampler starts near the honest mode and
	// cannot nucleate the inverted (sybil-side) mode, which is also a
	// local likelihood maximum.
	inX, sizeX, err := initialCut(g, verifier)
	if err != nil {
		return nil, fmt.Errorf("sybilinfer: initial cut: %w", err)
	}
	var aCnt, bCnt int // traces from X ending in X / outside X
	for _, tr := range traces {
		if inX[tr.start] {
			if inX[tr.end] {
				aCnt++
			} else {
				bCnt++
			}
		}
	}

	// Traces from inside X follow the fast-mixing model — with
	// probability PStay they end ~uniformly inside X, otherwise
	// ~uniformly outside. Traces from outside X are modeled as uniform
	// over all n nodes (the Danezis–Mittal model). Without the uniform
	// factor for X̄-traces the likelihood would trivially favor tiny
	// sets, because shrinking X simply removes factors from the product.
	totalTraces := len(traces)
	logUniform := -math.Log(float64(n))
	logStay := math.Log(cfg.PStay)
	logEscape := math.Log(1 - cfg.PStay)
	logL := func(aC, bC, size int) float64 {
		if size == 0 {
			return math.Inf(-1)
		}
		outside := float64(totalTraces-aC-bC) * logUniform
		inFactor := float64(aC) * (logStay - math.Log(float64(size)))
		var outFactor float64
		if bC > 0 {
			if size == n {
				return math.Inf(-1) // impossible: no complement to escape to
			}
			outFactor = float64(bC) * (logEscape - math.Log(float64(n-size)))
		}
		return inFactor + outFactor + outside
	}

	// flipDelta computes the (a, b, size) after toggling v.
	flip := func(v graph.NodeID, aC, bC, size int) (int, int, int) {
		joining := !inX[v]
		for _, ti := range startsAt[v] {
			tr := traces[ti]
			if joining {
				// The trace is added under the membership after the flip.
				if inX[tr.end] || tr.end == v {
					aC++
				} else {
					bC++
				}
			} else {
				// The trace is removed from the category it currently
				// occupies (v is still in X here, so end==v counts as in).
				if inX[tr.end] {
					aC--
				} else {
					bC--
				}
			}
		}
		for _, ti := range endsAt[v] {
			tr := traces[ti]
			if tr.start == v {
				continue // handled above with the corrected end membership
			}
			if !inX[tr.start] {
				continue
			}
			if joining {
				aC++
				bC--
			} else {
				aC--
				bC++
			}
		}
		if joining {
			size++
		} else {
			size--
		}
		return aC, bC, size
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	cur := logL(aCnt, bCnt, sizeX)
	counts := make([]int, n)
	steps := cfg.BurnIn + cfg.Samples*cfg.Thin
	taken := 0
	for step := 0; step < steps; step++ {
		v := graph.NodeID(rng.Intn(n))
		if v == verifier {
			continue
		}
		na, nb, ns := flip(v, aCnt, bCnt, sizeX)
		// SybilInfer assumes an honest majority; without the |X| >= n/2
		// constraint the sampler inverts onto the small, cohesive sybil
		// region, which scores higher per trace purely because it is
		// smaller.
		if ns < (n+1)/2 {
			continue
		}
		prop := logL(na, nb, ns)
		if prop >= cur || rng.Float64() < math.Exp(prop-cur) {
			inX[v] = !inX[v]
			aCnt, bCnt, sizeX = na, nb, ns
			cur = prop
		}
		if step >= cfg.BurnIn && (step-cfg.BurnIn)%cfg.Thin == 0 {
			for u := 0; u < n; u++ {
				if inX[u] {
					counts[u]++
				}
			}
			taken++
		}
	}
	if taken == 0 {
		return nil, fmt.Errorf("sybilinfer: no samples retained (burn-in %d, steps %d)", cfg.BurnIn, steps)
	}

	res := &Result{
		Marginal: make([]float64, n),
		Accepted: make([]bool, n),
	}
	for v := 0; v < n; v++ {
		res.Marginal[v] = float64(counts[v]) / float64(taken)
		res.Accepted[v] = res.Marginal[v] >= cfg.Threshold
	}
	res.Accepted[verifier] = true
	return res, nil
}
