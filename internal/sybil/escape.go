package sybil

import (
	"fmt"

	"github.com/trustnet/trustnet/internal/graph"
)

// EscapeProbability computes, exactly, the probability that a w-step
// random walk started at each given honest source crosses into the sybil
// region — the quantity every random-walk defense analysis bounds by
// g·w/(2m) (g attack edges among 2m directed edges, w chances to cross).
//
// It evolves the walk distribution with the sybil region made absorbing:
// mass that enters a sybil node stays there, so after w steps the total
// mass on sybil nodes is the escape probability. The result is one value
// per source, in source order.
func EscapeProbability(a *Attack, sources []graph.NodeID, w int) ([]float64, error) {
	if w < 1 {
		return nil, fmt.Errorf("sybil: escape walk length %d must be >= 1", w)
	}
	g := a.Combined
	n := g.NumNodes()
	for _, s := range sources {
		if !g.Valid(s) {
			return nil, fmt.Errorf("sybil: escape source %d out of range", s)
		}
		if !a.IsHonest(s) {
			return nil, fmt.Errorf("sybil: escape source %d is a sybil", s)
		}
		if g.Degree(s) == 0 {
			return nil, fmt.Errorf("sybil: escape source %d is isolated", s)
		}
	}
	out := make([]float64, len(sources))
	cur := make([]float64, n)
	next := make([]float64, n)
	for si, s := range sources {
		for i := range cur {
			cur[i] = 0
			next[i] = 0
		}
		cur[s] = 1
		for step := 0; step < w; step++ {
			for i := range next {
				next[i] = 0
			}
			for v := graph.NodeID(0); int(v) < n; v++ {
				mass := cur[v]
				if mass == 0 {
					continue
				}
				if !a.IsHonest(v) {
					next[v] += mass // absorbed
					continue
				}
				ns := g.Neighbors(v)
				if len(ns) == 0 {
					next[v] += mass
					continue
				}
				share := mass / float64(len(ns))
				for _, u := range ns {
					next[u] += share
				}
			}
			cur, next = next, cur
		}
		escaped := 0.0
		for v := graph.NodeID(0); int(v) < n; v++ {
			if !a.IsHonest(v) {
				escaped += cur[v]
			}
		}
		out[si] = escaped
	}
	return out, nil
}

// TheoreticalEscapeBound returns the standard g·w/(2m) upper estimate of
// the escape probability used throughout the defense literature, with m
// the honest region's edge count.
func (a *Attack) TheoreticalEscapeBound(w int) float64 {
	m := a.Honest.NumEdges()
	if m == 0 {
		return 1
	}
	b := float64(len(a.AttackEdges)) * float64(w) / float64(2*m)
	if b > 1 {
		return 1
	}
	return b
}
