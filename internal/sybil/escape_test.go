package sybil

import (
	"math"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func TestEscapeProbabilityBasics(t *testing.T) {
	honest, err := gen.BarabasiAlbert(300, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Inject(honest, AttackConfig{SybilNodes: 60, AttackEdges: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sources := []graph.NodeID{0, 10, 50}
	short, err := EscapeProbability(a, sources, 2)
	if err != nil {
		t.Fatal(err)
	}
	long, err := EscapeProbability(a, sources, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sources {
		if short[i] < 0 || short[i] > 1 || long[i] < 0 || long[i] > 1 {
			t.Fatalf("escape probabilities out of [0,1]: %v / %v", short[i], long[i])
		}
		// Absorption makes escape monotone in walk length.
		if long[i] < short[i]-1e-12 {
			t.Errorf("source %d: escape decreased with length: %v -> %v",
				sources[i], short[i], long[i])
		}
	}
}

func TestEscapeProbabilityTracksTheory(t *testing.T) {
	honest, err := gen.BarabasiAlbert(400, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Inject(honest, AttackConfig{SybilNodes: 50, AttackEdges: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	w := 10
	srcs := make([]graph.NodeID, 0, 20)
	for v := graph.NodeID(0); v < 20; v++ {
		srcs = append(srcs, v)
	}
	esc, err := EscapeProbability(a, srcs, w)
	if err != nil {
		t.Fatal(err)
	}
	bound := a.TheoreticalEscapeBound(w)
	mean := 0.0
	for _, e := range esc {
		mean += e
	}
	mean /= float64(len(esc))
	// The g·w/2m estimate is the right order of magnitude for the mean
	// escape: within a factor of 5 either way on a fast mixer.
	if mean > 5*bound || mean < bound/5 {
		t.Errorf("mean escape %v vs theoretical %v: off by more than 5x", mean, bound)
	}
}

func TestEscapeProbabilityMoreEdgesMoreEscape(t *testing.T) {
	honest, err := gen.BarabasiAlbert(300, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	few, err := Inject(honest, AttackConfig{SybilNodes: 50, AttackEdges: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Inject(honest, AttackConfig{SybilNodes: 50, AttackEdges: 40, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	srcs := []graph.NodeID{1, 2, 3, 4, 5}
	fewEsc, err := EscapeProbability(few, srcs, 15)
	if err != nil {
		t.Fatal(err)
	}
	manyEsc, err := EscapeProbability(many, srcs, 15)
	if err != nil {
		t.Fatal(err)
	}
	var fm, mm float64
	for i := range srcs {
		fm += fewEsc[i]
		mm += manyEsc[i]
	}
	if mm <= fm {
		t.Errorf("escape with 40 edges %v <= with 2 edges %v", mm, fm)
	}
}

func TestEscapeProbabilityValidation(t *testing.T) {
	honest, err := gen.BarabasiAlbert(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Inject(honest, AttackConfig{SybilNodes: 10, AttackEdges: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EscapeProbability(a, []graph.NodeID{0}, 0); err == nil {
		t.Error("w=0: want error")
	}
	if _, err := EscapeProbability(a, []graph.NodeID{9999}, 5); err == nil {
		t.Error("bad source: want error")
	}
	if _, err := EscapeProbability(a, []graph.NodeID{100}, 5); err == nil {
		t.Error("sybil source: want error")
	}
}

func TestTheoreticalEscapeBoundClamped(t *testing.T) {
	honest, err := gen.BarabasiAlbert(50, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Inject(honest, AttackConfig{SybilNodes: 10, AttackEdges: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b := a.TheoreticalEscapeBound(10000); b != 1 {
		t.Errorf("bound = %v, want clamped to 1", b)
	}
	if b := a.TheoreticalEscapeBound(1); b <= 0 || b >= 1 {
		t.Errorf("bound = %v, want in (0,1)", b)
	}
	if math.IsNaN(a.TheoreticalEscapeBound(5)) {
		t.Error("NaN bound")
	}
}
