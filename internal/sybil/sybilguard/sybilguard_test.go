package sybilguard

import (
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
)

func TestRunSeparatesHonestFromSybil(t *testing.T) {
	// SybilGuard's guarantee is g·w accepted sybils (w per attack edge),
	// so separation is only observable when the sybil count exceeds it:
	// here w ≈ √(900·log₂900) ≈ 94 and g = 2, so the bound is ≈ 188 of
	// the 500 sybils.
	honest, err := gen.BarabasiAlbert(400, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 500, AttackEdges: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	accepted, err := Run(a, 0, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sybil.Evaluate(a, accepted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hr := m.HonestAcceptRate(); hr < 0.7 {
		t.Errorf("honest acceptance = %v, want >= 0.7", hr)
	}
	sybilRate := float64(m.SybilAccepted) / float64(a.NumSybil())
	if sybilRate >= m.HonestAcceptRate() {
		t.Errorf("sybil rate %v >= honest rate %v", sybilRate, m.HonestAcceptRate())
	}
	// The g·w bound, with slack for the route-length rounding.
	w := Config{}
	if err := w.fill(a.Combined.NumNodes()); err != nil {
		t.Fatal(err)
	}
	bound := 2 * w.RouteLength
	if m.SybilAccepted > bound {
		t.Errorf("accepted sybils %d exceed g·w bound %d", m.SybilAccepted, bound)
	}
}

func TestRunValidation(t *testing.T) {
	honest, err := gen.BarabasiAlbert(100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 10, AttackEdges: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(a, 9999, Config{}); err == nil {
		t.Error("Run(bad verifier): want error")
	}
	if _, err := Run(a, 0, Config{RouteLength: -1}); err == nil {
		t.Error("Run(negative route length): want error")
	}
	if _, err := Run(a, 0, Config{AcceptFraction: 2}); err == nil {
		t.Error("Run(accept fraction 2): want error")
	}
}

func TestRunIsolatedVerifier(t *testing.T) {
	b := graph.NewBuilder(5)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	a := &sybil.Attack{Honest: g, Combined: g, HonestNodes: 5}
	if _, err := Run(a, 4, Config{}); err == nil {
		t.Error("Run(isolated verifier): want error")
	}
}

func TestVerifierAlwaysAcceptsSelf(t *testing.T) {
	honest, err := gen.BarabasiAlbert(150, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: 10, AttackEdges: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	accepted, err := Run(a, 42, Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !accepted[42] {
		t.Error("verifier did not accept itself")
	}
}

func TestIsolatedSuspectRejected(t *testing.T) {
	// Add an isolated node to the combined graph via a custom attack.
	b := graph.NewBuilder(6)
	for _, e := range []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}, {U: 0, V: 2}, {U: 1, V: 3}} {
		if err := b.AddEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build() // nodes 4,5 isolated
	a := &sybil.Attack{Honest: g, Combined: g, HonestNodes: 6}
	accepted, err := Run(a, 0, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if accepted[4] || accepted[5] {
		t.Error("isolated suspects were accepted")
	}
}
