// Package sybilguard implements the SybilGuard verification protocol of
// Yu et al. (SIGCOMM 2006), the first defense to exploit the fast-mixing
// property the paper measures.
//
// Every node performs one random route per incident edge, of length
// w = Θ(√(n log n)), using shared per-node permutation routing tables
// (sybil.RouteTable), and registers its identity at every node its route
// visits. A verifier V accepts a suspect S when at least an AcceptFraction
// of S's routes intersect the node set of V's routes *at a node where S's
// registration was actually recorded*.
//
// The registration step is what produces SybilGuard's g·w bound on
// accepted sybils: permutation routing is convergent, so every sybil route
// escaping through the same attack edge with the same remaining length
// follows the identical suffix and competes for the identical registry
// slots (node, entry-edge, position), of which there are at most w per
// attack edge. Honest routes never collide in a registry slot because
// permutation routing is also reversible: a route entering a node through
// a given edge at a given position has a unique origin.
package sybilguard

import (
	"fmt"
	"math"

	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/sybil"
)

// Config parameterizes a SybilGuard run.
type Config struct {
	// RouteLength is w. Defaults to ceil(sqrt(n·log2 n)) when 0.
	RouteLength int
	// AcceptFraction is the fraction of the suspect's routes that must
	// (verifiably) intersect the verifier's routes. Defaults to 0.5.
	AcceptFraction float64
	// Seed drives the routing tables.
	Seed int64
}

func (c *Config) fill(n int) error {
	if c.RouteLength == 0 {
		c.RouteLength = int(math.Ceil(math.Sqrt(float64(n) * math.Log2(float64(n)+1))))
	}
	if c.RouteLength < 1 {
		return fmt.Errorf("sybilguard: route length %d must be >= 1", c.RouteLength)
	}
	if c.AcceptFraction == 0 {
		c.AcceptFraction = 0.5
	}
	if c.AcceptFraction <= 0 || c.AcceptFraction > 1 {
		return fmt.Errorf("sybilguard: accept fraction %v out of (0,1]", c.AcceptFraction)
	}
	return nil
}

// trajectory is a sequence of directed hops, each encoded [from, to].
type trajectory = [][2]graph.NodeID

// regKey identifies one registry slot: a node, the edge slot a route
// entered through, and the route position (hop index) at which it did.
type regKey struct {
	node graph.NodeID
	slot int32
	pos  int32
}

// Run evaluates every node of the attack's combined graph from the
// verifier's perspective and returns the acceptance vector.
func Run(a *sybil.Attack, verifier graph.NodeID, cfg Config) ([]bool, error) {
	g := a.Combined
	if err := cfg.fill(g.NumNodes()); err != nil {
		return nil, err
	}
	if !g.Valid(verifier) {
		return nil, fmt.Errorf("sybilguard: verifier %d out of range", verifier)
	}
	if g.Degree(verifier) == 0 {
		return nil, fmt.Errorf("sybilguard: verifier %d is isolated", verifier)
	}
	rt := sybil.NewRouteTable(g, cfg.Seed)

	// Pass 1: every node walks its routes and registers itself along
	// them; first writer wins a contested slot (honest routes never
	// contest, by reversibility of permutation routing).
	n := g.NumNodes()
	registry := make(map[regKey]graph.NodeID)
	routes := make([][]trajectory, n) // routes[v][slot] = trajectory
	for v := graph.NodeID(0); int(v) < n; v++ {
		d := g.Degree(v)
		if d == 0 {
			continue
		}
		routes[v] = make([]trajectory, d)
		for slot := 0; slot < d; slot++ {
			route, err := rt.Route(v, slot, cfg.RouteLength)
			if err != nil {
				return nil, fmt.Errorf("sybilguard: route of %d: %w", v, err)
			}
			routes[v][slot] = route
			for pos, hop := range route {
				inSlot, err := edgeSlot(g, hop[1], hop[0])
				if err != nil {
					return nil, err
				}
				key := regKey{node: hop[1], slot: inSlot, pos: int32(pos)}
				if _, taken := registry[key]; !taken {
					registry[key] = v
				}
			}
		}
	}

	// registeredAt[v] is the set of nodes where v's registrations stuck.
	registeredAt := make([][]graph.NodeID, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		seen := make(map[graph.NodeID]struct{})
		for _, route := range routes[v] {
			for pos, hop := range route {
				inSlot, err := edgeSlot(g, hop[1], hop[0])
				if err != nil {
					return nil, err
				}
				if registry[regKey{node: hop[1], slot: inSlot, pos: int32(pos)}] == v {
					seen[hop[1]] = struct{}{}
				}
			}
		}
		pts := make([]graph.NodeID, 0, len(seen))
		for x := range seen {
			pts = append(pts, x)
		}
		registeredAt[v] = pts
	}

	// Membership stamps for each verifier route: routeMark[x] is a bitmask
	// of the verifier routes passing through x (verifier degree is assumed
	// modest; beyond 64 routes the extras share the last bit, which only
	// makes acceptance stricter, never looser).
	dv := g.Degree(verifier)
	routeMark := make([]uint64, n)
	for j, route := range routes[verifier] {
		bit := uint64(1) << uint(min(j, 63))
		for _, hop := range route {
			routeMark[hop[1]] |= bit
		}
	}

	// Pass 2: V accepts S when at least AcceptFraction of V's routes
	// intersect a node where S is verifiably registered.
	accepted := make([]bool, n)
	accepted[verifier] = true
	need := int(math.Ceil(cfg.AcceptFraction * float64(dv)))
	if need < 1 {
		need = 1
	}
	for s := graph.NodeID(0); int(s) < n; s++ {
		if s == verifier || g.Degree(s) == 0 {
			continue
		}
		var mask uint64
		for _, x := range registeredAt[s] {
			mask |= routeMark[x]
		}
		hits := 0
		for m := mask; m != 0; m &= m - 1 {
			hits++
		}
		accepted[s] = hits >= need
	}
	return accepted, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// edgeSlot returns the index of neighbor u in v's sorted adjacency list.
func edgeSlot(g *graph.Graph, v, u graph.NodeID) (int32, error) {
	ns := g.Neighbors(v)
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ns) && ns[lo] == u {
		return int32(lo), nil
	}
	return 0, fmt.Errorf("sybilguard: (%d,%d) is not an edge", v, u)
}
