// Dhtlookup: run a Whānau-style Sybil-proof DHT on top of two social
// graphs and watch lookup reliability track the graphs' measured mixing
// time — the "Sybil-proof DHT" application of §I of the paper, wired to
// the measurement suite.
//
// Run with: go run ./examples/dhtlookup
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/trustnet/trustnet/internal/dht"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/sybil"
	"github.com/trustnet/trustnet/internal/walk"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fast, err := gen.BarabasiAlbert(800, 5, 2)
	if err != nil {
		return err
	}
	slow, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 10, CommunitySize: 80, Attach: 4, Bridges: 1, Seed: 2,
	})
	if err != nil {
		return err
	}

	t := report.NewTable(
		"Whanau-style DHT: lookup success vs the host graph's measured mixing",
		"Graph", "T(0.1)", "walk len", "lookup success",
	)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"fast (BA)", fast}, {"slow (clustered)", slow}} {
		// Measure the mixing time first — the deployment decision the
		// paper argues for.
		mr, err := walk.MeasureMixing(context.Background(), tc.g, walk.MixingConfig{
			MaxSteps: 200, Sources: 20, Seed: 1,
		})
		if err != nil {
			return err
		}
		tmix, mixed := mr.MixingTime(0.1)
		tmixStr := "> 200"
		if mixed {
			tmixStr = fmt.Sprintf("%d", tmix)
		}

		a, err := sybil.Inject(tc.g, sybil.AttackConfig{
			SybilNodes: 80, AttackEdges: 4, Seed: 3,
		})
		if err != nil {
			return err
		}
		// The DHT uses a fixed w = 10 walk — sufficient on the fast
		// mixer, far too short on the slow one.
		tab, err := dht.Build(a, dht.Config{WalkLength: 10, Seed: 4})
		if err != nil {
			return err
		}
		rate, err := tab.Evaluate(400, 5)
		if err != nil {
			return err
		}
		if err := t.AddRow(tc.name, tmixStr, "10",
			report.Float(100*rate, 1)+"%"); err != nil {
			return err
		}
	}
	fmt.Print(t.String())
	fmt.Println("\nReading: the DHT's random-walk samples are only uniform past the mixing")
	fmt.Println("time; when the measured T exceeds the protocol's walk budget, lookups fail —")
	fmt.Println("measure first, deploy second (the paper's thesis).")
	return nil
}
