// Quickstart: build a social graph, measure the three properties the
// paper studies (mixing time, expansion, core structure), and print a
// one-page summary.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/trustnet/trustnet/internal/core"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Build a graph. Any simple undirected graph works: load one with
	// graph.LoadEdgeList, or generate one. Here: a 2000-node
	// preferential-attachment graph, the classic fast-mixing OSN shape.
	g, err := gen.BarabasiAlbert(2000, 6, 42)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d nodes, %d edges, max degree %d, avg degree %.1f\n\n",
		g.NumNodes(), g.NumEdges(), g.MaxDegree(), g.AverageDegree())

	// 2. Run the measurement suite. Everything is seeded and
	// deterministic; Config's zero values pick sensible scaled defaults.
	rep, err := core.Measure(context.Background(), "quickstart", g, core.Config{Seed: 1})
	if err != nil {
		return err
	}

	// 3. Read the results.
	fmt.Printf("mixing:    SLEM mu = %.4f; Sinclair bounds %.0f..%.0f steps at eps=%.1e\n",
		rep.SLEM, rep.Bounds.Lower, rep.Bounds.Upper, rep.Epsilon)
	if rep.MixedWithinBudget {
		fmt.Printf("           sampling method: T(eps) = %d steps\n", rep.MixingTime)
	} else {
		fmt.Printf("           sampling method: did not reach eps within budget\n")
	}
	fmt.Printf("cores:     degeneracy %d, top core holds %.0f%% of nodes in %d component(s)\n",
		rep.Cores.Degeneracy, 100*rep.Cores.TopCoreNu, rep.Cores.TopCoreComponents)
	fmt.Printf("expansion: min alpha %.4f, mean alpha over small sets %.2f\n\n",
		rep.Expansion.MinAlpha, rep.Expansion.MeanAlphaSmallSets)

	// 4. The paper's punchline, as a library call: a fast mixer has one
	// big core and good expansion, so mixing-time and expansion-based
	// Sybil defenses both apply.
	fastMixer := rep.MixedWithinBudget && rep.Cores.TopCoreComponents == 1
	fmt.Printf("verdict: fast mixer with a single dense core: %v\n", fastMixer)
	_ = graph.IsConnected // (see examples/mixingaudit for the defense-side decision)
	return nil
}
