// Anonymity: pick relay nodes for an anonymous-communication overlay by
// random-walking a social graph — the §I application of social graphs as
// "good mixers" (Nagaraja, PETS'07).
//
// A relay picked by a w-step random walk is (near-)stationary-distributed
// once w exceeds the mixing time, so an observer learns almost nothing
// about the walk's origin from the relay's identity. This example uses
// the anonymity package to quantify sender anonymity (normalized entropy
// and the Eq. 2 TVD gap) as a function of walk length, contrasts a fast
// and a slow mixer, and derives the deployment walk length from the
// mixing measurement.
//
// Run with: go run ./examples/anonymity
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/trustnet/trustnet/internal/anonymity"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fast, err := gen.BarabasiAlbert(1200, 5, 9)
	if err != nil {
		return err
	}
	slow, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 8, CommunitySize: 150, Attach: 5, Bridges: 2, Seed: 9,
	})
	if err != nil {
		return err
	}

	t := report.NewTable(
		"Relay-selection anonymity vs walk length (worst of 20 sampled senders)",
		"walk length", "fast entropy", "fast TVD gap", "slow entropy", "slow TVD gap",
	)
	for _, w := range []int{2, 4, 8, 16, 32, 64} {
		cfg := anonymity.Config{WalkLength: w, Lazy: true}
		fs, err := anonymity.MeasureAll(fast, 20, cfg, 4)
		if err != nil {
			return err
		}
		ss, err := anonymity.MeasureAll(slow, 20, cfg, 4)
		if err != nil {
			return err
		}
		if err := t.AddRow(report.Int(w),
			report.Float(fs.WorstNormalizedEntropy, 3),
			report.Float(fs.WorstTVDGap, 4),
			report.Float(ss.WorstNormalizedEntropy, 3),
			report.Float(ss.WorstTVDGap, 4)); err != nil {
			return err
		}
	}
	fmt.Print(t.String())

	// Operational decision: the walk length at which the observer's TVD
	// advantage drops below 1%.
	pick := func(g *graph.Graph) string {
		w, ok, err := anonymity.RequiredWalkLength(context.Background(), g, 20, 0.01, 200, true, 4)
		if err != nil || !ok {
			return "not within budget"
		}
		return fmt.Sprintf("%d hops", w)
	}
	fmt.Printf("\nrelay walk length for TVD gap < 0.01: fast mixer %s, slow mixer %s\n",
		pick(fast), pick(slow))
	fmt.Println("On the slow mixer the relay leaks the sender's community for any practical")
	fmt.Println("walk length — the anonymity analogue of the paper's Sybil-defense finding.")
	return nil
}
