// Mixingaudit: decide whether a social graph meets a Sybil defense's
// mixing assumption before deploying the defense on it.
//
// SybilLimit-style systems fix a route length w and implicitly assume
// w >= T(eps), the graph's mixing time. The paper's point is that this
// must be *measured*: the audit below measures T(eps) with the sampling
// method, cross-checks the spectral bounds, and reports which walk-length
// budgets are actually safe.
//
// Run with: go run ./examples/mixingaudit
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/spectral"
	"github.com/trustnet/trustnet/internal/walk"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Audit one fast and one slow graph from the Table I registry.
	t := report.NewTable(
		"Mixing audit: is w = c*log2(n) long enough to run SybilLimit?",
		"Dataset", "n", "mu", "T(0.05)", "w=log2 n", "w=2log2 n", "w=4log2 n",
	)
	for _, name := range []string{"rice-grad", "epinion", "physics-1", "physics-2"} {
		spec, err := datasets.ByName(name)
		if err != nil {
			return err
		}
		g, err := spec.Generate()
		if err != nil {
			return err
		}
		n := g.NumNodes()

		mr, err := walk.MeasureMixing(context.Background(), g, walk.MixingConfig{
			MaxSteps: 300, Sources: 30, Seed: 1,
		})
		if err != nil {
			return err
		}
		const eps = 0.05
		tm, mixed := mr.MixingTime(eps)

		sr, err := spectral.SLEM(g, spectral.Config{Tolerance: 1e-6, Seed: 1})
		if err != nil {
			return err
		}

		verdict := func(c float64) string {
			w := int(math.Ceil(c * math.Log2(float64(n))))
			if mixed && w >= tm {
				return fmt.Sprintf("ok (w=%d)", w)
			}
			return fmt.Sprintf("UNSAFE (w=%d)", w)
		}
		tmStr := "> 300"
		if mixed {
			tmStr = report.Int(tm)
		}
		if err := t.AddRow(name, report.Int(n), report.Float(sr.SLEM, 4),
			tmStr, verdict(1), verdict(2), verdict(4)); err != nil {
			return err
		}
	}
	fmt.Print(t.String())
	fmt.Println("\nReading: the O(log n) walk lengths the defense literature assumes are fine")
	fmt.Println("on the OSN-like graphs and far too short on the co-authorship graphs —")
	fmt.Println("the paper's core measurement result (Figure 1).")
	return nil
}
