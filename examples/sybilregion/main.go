// Sybilregion: inject a sybil attack into two social graphs with opposite
// mixing characteristics and run GateKeeper and SybilLimit on both — the
// end-to-end scenario behind Table II of the paper.
//
// The fast-mixing OSN-like graph supports both defenses; the slow-mixing
// community graph degrades them, which is exactly why the paper insists
// the properties be measured rather than assumed.
//
// Run with: go run ./examples/sybilregion
package main

import (
	"fmt"
	"log"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/sybil"
	"github.com/trustnet/trustnet/internal/sybil/gatekeeper"
	"github.com/trustnet/trustnet/internal/sybil/sybillimit"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fast, err := gen.BarabasiAlbert(1500, 6, 7)
	if err != nil {
		return err
	}
	slow, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
		Communities: 10, CommunitySize: 150, Attach: 5, Bridges: 2, Seed: 7,
	})
	if err != nil {
		return err
	}

	t := report.NewTable(
		"GateKeeper (f=0.2) and SybilLimit under a 300-sybil / 6-attack-edge attack",
		"Graph", "Defense", "Honest %", "Sybils/edge",
	)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{{"fast (BA)", fast}, {"slow (clustered)", slow}} {
		a, err := sybil.Inject(tc.g, sybil.AttackConfig{
			SybilNodes: 300, AttackEdges: 6, Seed: 11,
		})
		if err != nil {
			return err
		}

		gk, err := gatekeeper.Run(a, 0, gatekeeper.Config{Distributers: 99, Seed: 3})
		if err != nil {
			return err
		}
		accepted, err := gk.Accepted(0.2)
		if err != nil {
			return err
		}
		m, err := sybil.Evaluate(a, accepted, 0)
		if err != nil {
			return err
		}
		if err := t.AddRow(tc.name, "gatekeeper",
			report.Float(100*m.HonestAcceptRate(), 1),
			report.Float(m.SybilsPerAttackEdge(), 2)); err != nil {
			return err
		}

		sl, err := sybillimit.Run(a, 0, sybillimit.Config{Seed: 3})
		if err != nil {
			return err
		}
		m, err = sybil.Evaluate(a, sl.Accepted, 0)
		if err != nil {
			return err
		}
		if err := t.AddRow("", "sybillimit",
			report.Float(100*m.HonestAcceptRate(), 1),
			report.Float(m.SybilsPerAttackEdge(), 2)); err != nil {
			return err
		}
	}
	fmt.Print(t.String())
	fmt.Println("\nReading: honest acceptance collapses on the slow mixer — the defenses'")
	fmt.Println("fast-mixing/expander assumptions do not hold there (paper §IV-C, Table II).")
	return nil
}
