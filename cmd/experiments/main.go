// Command experiments regenerates every table and figure of the paper's
// evaluation section from the synthetic dataset registry, writing ASCII
// tables and CSV series under -out (default ./out).
//
// Every experiment is a typed job registered in internal/experiments'
// jobs.Registry; this command is a thin shell over it. -list enumerates
// the registered jobs with their config fingerprints; -run selects a
// comma-separated subset (unknown names fail with the nearest valid
// name). Completed results are content-addressed into <out>/cache by
// (graph fingerprint, config fingerprint, schema version): a rerun with
// an unchanged substrate and configuration replays the artifact
// byte-identically without recomputing (disable with -no-cache).
//
// The runner is fault tolerant: a job that fails, panics, or exceeds
// its -timeout is reported as a failed job while the remaining jobs
// still run (disable with -keep-going=false), and any failure makes the
// process exit nonzero with a summary table (panic stacks included).
// Transient failures are retried with seeded-jitter exponential backoff
// (-max-retries, -retry-base); every job checkpoints its completion —
// and, with -best-effort, its partial progress — under <out>/ckpt,
// keyed by the canonical graph-substrate fingerprint, so a crashed or
// killed run continues where it left off when rerun with -resume,
// producing bit-identical artifacts.
//
// Usage:
//
//	experiments                 # run everything (minutes)
//	experiments -list           # enumerate registered jobs + fingerprints
//	experiments -run tableII    # one experiment
//	experiments -run tableI,figure1  # a comma-separated subset
//	experiments -quick          # reduced sampling, seconds
//	experiments -no-cache       # recompute even on a cache hit
//	experiments -timeout 2m     # bound each job
//	experiments -workers 4      # bound measurement parallelism
//	experiments -best-effort    # salvage partial results at the deadline
//	experiments -resume         # skip/continue from out/ckpt checkpoints
//	experiments -max-retries 3 -retry-base 200ms  # transient-failure retries
//	experiments -run epochs -incremental  # epoch sweep via internal/incremental
//	experiments -cpuprofile cpu.pprof -memprofile mem.pprof  # profile any run
//	experiments -metrics-addr :8080  # live metrics snapshots over HTTP
//
// Every run writes out/METRICS.json: per-job wall time, allocation and
// heap figures, and the observability counters/timers/spans the job
// produced (see internal/obs). Cache hits surface there as
// jobs.cache.hits with zero jobs.run.executed in the job's window.
//
//	experiments bench           # time the parallel fan-out (workers=1 vs N,
//	                            # out/BENCH_parallel.json), the batched
//	                            # kernels (naive vs kernel at workers=1,
//	                            # out/BENCH_kernels.json), the zero-copy
//	                            # views (rebuild-per-epoch vs MaskedView,
//	                            # out/BENCH_views.json), and the incremental
//	                            # epoch sweep (full recompute vs maintainers,
//	                            # out/BENCH_incremental.json), and the scale
//	                            # substrate (streamed TNG2 + mmap, monolithic
//	                            # vs sharded, out/BENCH_scale.json); exits
//	                            # nonzero if any variant pair diverges
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/experiments"
	"github.com/trustnet/trustnet/internal/jobs"
	"github.com/trustnet/trustnet/internal/obs"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/resilience"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// job is one experiment queued for the fault-tolerant runner: run
// receives a context already bounded by the per-job timeout and must
// return rather than os.Exit on failure.
type job struct {
	name string
	// fp ties the job's done checkpoint to both the graph substrate and
	// the job configuration; a run over different datasets or knobs never
	// resumes this one's checkpoint. Empty matches any checkpoint (legacy
	// tests only).
	fp  string
	run func(ctx context.Context) error
}

// jobFailure records one failed job for the summary.
type jobFailure struct {
	name     string
	err      error
	class    resilience.Class
	attempts int
}

// runnerConfig bundles the fault-tolerance knobs runJobs runs under.
type runnerConfig struct {
	timeout   time.Duration
	keepGoing bool
	// policy retries transient job failures; MaxAttempts <= 1 disables
	// retrying.
	policy resilience.Policy
	// store persists per-job done markers (and receives the experiments'
	// own per-dataset checkpoints via experiments.Options.Ckpt); nil
	// disables job checkpointing.
	store *resilience.Store
	// resume skips jobs whose done checkpoint matches the job's fp.
	resume bool
}

func run(args []string) error {
	bench := len(args) > 0 && args[0] == "bench"
	if bench {
		args = args[1:]
	}
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only        = fs.String("run", "", "comma-separated experiments to run (default: all; see -list): tableI | figure1 | figure2 | tableII | figure3 | figure4 | figure5 | cross | dynamic | modulated | attacker | betweenness | sweep | churn | epochs")
		list        = fs.Bool("list", false, "list the registered experiments with their config fingerprints and exit")
		quick       = fs.Bool("quick", false, "reduced sampling for a fast smoke run")
		seed        = fs.Int64("seed", 1, "measurement seed")
		out         = fs.String("out", "out", "output directory")
		noCache     = fs.Bool("no-cache", false, "recompute jobs even when a cached artifact matches; never read or write <out>/cache")
		cacheMax    = fs.Int64("cache-max-bytes", 0, "cap <out>/cache at this many bytes, evicting oldest artifacts first (0 = unbounded)")
		timeout     = fs.Duration("timeout", 0, "per-job timeout (0 = none)")
		keepGoing   = fs.Bool("keep-going", true, "run remaining jobs after a failure and summarize at the end")
		workers     = fs.Int("workers", 0, "measurement parallelism; 0 = GOMAXPROCS")
		repeats     = fs.Int("bench-repeats", 3, "bench mode: timed repetitions per variant (best kept)")
		resume      = fs.Bool("resume", false, "skip jobs and datasets already completed in -ckpt-dir; continue interrupted ones")
		maxRetries  = fs.Int("max-retries", 2, "retries per job after a transient failure (0 = no retries)")
		retryBase   = fs.Duration("retry-base", 100*time.Millisecond, "base delay of the exponential retry backoff")
		bestEffort  = fs.Bool("best-effort", false, "return partial results with coverage annotations when a job hits its -timeout")
		incr        = fs.Bool("incremental", false, "route epoch-sweep measurements through the incremental maintainers (delta-repaired cores and BFS, warm-started SLEM)")
		ckptDir     = fs.String("ckpt-dir", "", "checkpoint directory (default <out>/ckpt)")
		cpuprofile  = fs.String("cpuprofile", "", "write a CPU profile to this file (any mode)")
		memprofile  = fs.String("memprofile", "", "write a heap profile to this file at exit (any mode)")
		metricsAddr = fs.String("metrics-addr", "", "serve live metrics snapshots over HTTP on this address (e.g. :8080)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			// -h is a successful interaction: usage was printed, exit 0.
			return nil
		}
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}()
	}

	if *ckptDir == "" {
		*ckptDir = filepath.Join(*out, "ckpt")
	}
	store := resilience.NewStore(*ckptDir)
	opts := experiments.Options{
		// One shared dataset cache: the substrate fingerprint generates
		// every registry graph once and the jobs reuse them.
		Cache: &datasets.Cache{},
		Quick: *quick, Seed: *seed, Workers: *workers,
		BestEffort: *bestEffort, Ckpt: store, Resume: *resume,
		Incremental: *incr,
	}

	reg, err := experiments.Jobs(opts)
	if err != nil {
		return err
	}
	if *list {
		for _, j := range reg.Jobs() {
			fmt.Printf("%-12s %s\n", j.Name(), j.Fingerprint())
		}
		return nil
	}

	obsReg := obs.Default()
	if *metricsAddr != "" {
		srv, addr, err := obsReg.Serve(*metricsAddr)
		if err != nil {
			return err
		}
		// Drain, don't Close: a scraper reading /metrics at process exit
		// gets its response completed instead of a severed connection.
		defer func() {
			if derr := obs.DrainServer(srv, 2*time.Second); derr != nil {
				fmt.Fprintln(os.Stderr, "experiments:", derr)
			}
		}()
		fmt.Fprintf(os.Stderr, "experiments: metrics at http://%s/metrics\n", addr)
	}
	mc := newMetricsCollector(obsReg, *quick, *seed, *workers)

	if bench {
		before := mc.beforeJob()
		start := time.Now()
		err := runBench(context.Background(), opts, *out, *workers, *repeats, os.Stdout)
		mc.afterJob("bench", err, time.Since(start), before, 1)
		if path, werr := mc.write(*out); werr != nil {
			if err == nil {
				err = werr
			}
		} else {
			fmt.Printf("wrote %s\n", path)
		}
		return err
	}

	// Resolve the selection through the registry before doing any work,
	// so a typo fails instantly with the nearest valid name.
	selected := reg.Jobs()
	if *only != "" {
		selected = selected[:0:0]
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			j, err := reg.Lookup(name)
			if err != nil {
				return err
			}
			selected = append(selected, j)
		}
		if len(selected) == 0 {
			return fmt.Errorf("no experiments selected by -run %q", *only)
		}
	}

	// The canonical substrate digest: the graph half of every artifact
	// cache key and job checkpoint fingerprint. Generating it warms the
	// shared dataset cache the jobs draw from.
	graphFP, err := experiments.SubstrateFingerprint(opts)
	if err != nil {
		return err
	}
	var cache *jobs.Store
	if !*noCache {
		cache = jobs.NewStore(filepath.Join(*out, "cache"))
		if *cacheMax > 0 {
			cache.SetMaxBytes(*cacheMax)
		}
	}
	runner := &jobs.Runner{
		Cache:  cache,
		Env:    jobs.Env{GraphFingerprint: graphFP, Ckpt: store, Resume: *resume},
		OutDir: *out,
		Stdout: os.Stdout,
	}
	// Substrate generation is setup, not the first job's work.
	mc.rebase()

	queue := make([]job, 0, len(selected))
	for _, jj := range selected {
		jj := jj
		queue = append(queue, job{
			name: jj.Name(),
			fp:   resilience.Fingerprint("job", graphFP, jj.Fingerprint()),
			run: func(ctx context.Context) error {
				_, err := runner.Run(ctx, jj)
				return err
			},
		})
	}
	rc := runnerConfig{
		timeout:   *timeout,
		keepGoing: *keepGoing,
		policy: resilience.Policy{
			MaxAttempts: *maxRetries + 1,
			BaseDelay:   *retryBase,
			Jitter:      0.25,
			Seed:        *seed,
		},
		store:  store,
		resume: *resume,
	}
	err = runJobs(context.Background(), queue, rc, mc, os.Stdout)
	if path, werr := mc.write(*out); werr != nil {
		if err == nil {
			err = werr
		}
	} else {
		fmt.Printf("wrote %s\n", path)
	}
	return err
}

// runJobs executes the queued jobs sequentially with per-job timeout,
// panic recovery, transient-failure retries, and checkpoint-based
// resume (each job's done marker is keyed by its own fp). With
// keepGoing, a failed job is recorded and the remaining jobs still run;
// the failures are summarized on w (with the recovered stack for
// panics) and returned as a single error so the process exits nonzero.
// When mc is non-nil, each job's wall time, allocator deltas, attempt
// count, and metrics window are collected.
func runJobs(ctx context.Context, queue []job, rc runnerConfig, mc *metricsCollector, w io.Writer) error {
	var failures []jobFailure
	for _, j := range queue {
		if rc.resume && rc.store != nil {
			c, err := rc.store.Load("job-"+j.name, j.fp)
			if err != nil {
				return err
			}
			if c != nil && c.Status == resilience.StatusDone {
				fmt.Fprintf(w, "== %s ==\nSKIP %s (done checkpoint from an earlier run)\n\n", j.name, j.name)
				if mc != nil {
					mc.skipJob(j.name)
				}
				continue
			}
		}
		start := time.Now()
		fmt.Fprintf(w, "== %s ==\n", j.name)
		var before runtime.MemStats
		if mc != nil {
			before = mc.beforeJob()
		}
		pol := rc.policy
		pol.OnRetry = func(attempt int, err error, class resilience.Class, backoff time.Duration) {
			fmt.Fprintf(w, "RETRY %s (attempt %d failed %s: %v; next in %v)\n",
				j.name, attempt, class, err, backoff.Round(time.Millisecond))
		}
		outcome, err := pol.Run(ctx, func(ctx context.Context, _ int) error {
			return runOne(ctx, j, rc.timeout)
		})
		if mc != nil {
			mc.afterJob(j.name, err, time.Since(start), before, outcome.Attempts)
		}
		if err != nil {
			failures = append(failures, jobFailure{name: j.name, err: err, class: outcome.Class, attempts: outcome.Attempts})
			fmt.Fprintf(w, "FAILED %s after %v: %v\n\n", j.name, time.Since(start).Round(time.Millisecond), err)
			if !rc.keepGoing {
				break
			}
			continue
		}
		if rc.store != nil {
			c := &resilience.Checkpoint{Job: "job-" + j.name, Fingerprint: j.fp, Status: resilience.StatusDone, Attempts: outcome.Attempts}
			if err := rc.store.Save(c); err != nil {
				return err
			}
		}
		fmt.Fprintf(w, "(%s in %v)\n\n", j.name, time.Since(start).Round(time.Millisecond))
	}
	if len(failures) == 0 {
		return nil
	}
	t := report.NewTable(fmt.Sprintf("%d of %d jobs failed", len(failures), len(queue)),
		"Job", "Class", "Attempts", "Error")
	for _, f := range failures {
		if err := t.AddRow(f.name, f.class.String(), fmt.Sprintf("%d", f.attempts), f.err.Error()); err != nil {
			return err
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	// Panic stacks are too wide for a table cell; print them after the
	// summary so the failing frame is on record.
	for _, f := range failures {
		if pe, ok := resilience.AsPanic(f.err); ok {
			fmt.Fprintf(w, "\npanic stack for %s:\n%s", f.name, pe.Stack)
		}
	}
	return fmt.Errorf("%d job(s) failed (first: %s: %v)", len(failures), failures[0].name, failures[0].err)
}

// runOne runs a single job under its timeout, converting a panic into a
// reported failure carrying the recovered stack (resilience.PanicError,
// classified transient so the retry policy may re-run it). The job runs
// in its own goroutine so a job that ignores its context cannot stall
// the runner past the deadline; such a goroutine is abandoned (it holds
// no locks the runner needs) and the leak lasts at most until process
// exit. The goroutine carries the "experiment" pprof label so CPU
// profile samples attribute to the job.
//
// When the deadline fires, the runner grants a short grace period for a
// cooperative best-effort job to salvage its partial results: a job that
// returns nil within the grace window counts as a success.
func runOne(parent context.Context, j job, timeout time.Duration) (err error) {
	ctx := parent
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, timeout)
		defer cancel()
	}
	done := make(chan error, 1)
	jctx := obs.WithExperiment(ctx, j.name)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- &resilience.PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		pprof.Do(jctx, pprof.Labels(), func(jctx context.Context) {
			done <- j.run(jctx)
		})
	}()
	select {
	case err = <-done:
		return err
	case <-ctx.Done():
		select {
		case err = <-done:
			if err == nil {
				return nil // best-effort salvage beat the grace period
			}
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("timed out after %v: %w", timeout, err)
			}
			return err
		case <-time.After(graceFor(timeout)):
			return fmt.Errorf("timed out after %v: %w", timeout, ctx.Err())
		}
	}
}

// graceFor is how long a deadline-hit job gets to return its salvaged
// partial result before the runner abandons it: a fifth of the timeout,
// clamped to [100ms, 2s].
func graceFor(timeout time.Duration) time.Duration {
	g := timeout / 5
	if g < 100*time.Millisecond {
		g = 100 * time.Millisecond
	}
	if g > 2*time.Second {
		g = 2 * time.Second
	}
	return g
}

// runBench times the parallel measurement kernels at workers=1 vs N and
// writes the trajectory point to out/BENCH_parallel.json.
func runBench(ctx context.Context, opts experiments.Options, out string, workers, repeats int, w io.Writer) error {
	res, err := experiments.Bench(ctx, opts, workers, repeats)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("bench: workers=1 vs %d (GOMAXPROCS=%d, best of %d)", res.Workers, res.GOMAXPROCS, repeats),
		"Kernel", "Dataset", "workers=1 (s)", fmt.Sprintf("workers=%d (s)", res.Workers), "Speedup", "Identical")
	for _, e := range res.Entries {
		if err := t.AddRow(e.Name, e.Dataset,
			report.Float(e.SequentialSeconds, 4), report.Float(e.ParallelSeconds, 4),
			report.Float(e.Speedup, 2), fmt.Sprintf("%v", e.Identical)); err != nil {
			return err
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(out, "BENCH_parallel.json")
	if err := resilience.WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)

	kres, err := experiments.BenchKernels(ctx, opts, repeats)
	if err != nil {
		return err
	}
	kt := report.NewTable(
		fmt.Sprintf("bench: naive vs batched kernels at workers=1 (best of %d)", repeats),
		"Kernel", "Dataset", "Sources", "Naive (s)", "Kernel (s)", "Speedup", "Identical")
	for _, e := range kres.Entries {
		if err := kt.AddRow(e.Name, e.Dataset, report.Int(e.Sources),
			report.Float(e.NaiveSeconds, 4), report.Float(e.KernelSeconds, 4),
			report.Float(e.Speedup, 2), fmt.Sprintf("%v", e.Identical)); err != nil {
			return err
		}
	}
	if err := kt.Render(w); err != nil {
		return err
	}
	kdata, err := json.MarshalIndent(kres, "", "  ")
	if err != nil {
		return err
	}
	kpath := filepath.Join(out, "BENCH_kernels.json")
	if err := resilience.WriteFileAtomic(kpath, append(kdata, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", kpath)

	vres, err := experiments.BenchViews(ctx, opts, repeats)
	if err != nil {
		return err
	}
	vt := report.NewTable(
		fmt.Sprintf("bench: rebuild-per-epoch vs zero-copy views (best of %d)", repeats),
		"Pipeline", "Dataset", "Epochs", "Rebuild (s)", "View (s)", "Speedup", "Identical")
	for _, e := range vres.Entries {
		if err := vt.AddRow(e.Name, e.Dataset, report.Int(e.Epochs),
			report.Float(e.RebuildSeconds, 4), report.Float(e.ViewSeconds, 4),
			report.Float(e.Speedup, 2), fmt.Sprintf("%v", e.Identical)); err != nil {
			return err
		}
	}
	if err := vt.Render(w); err != nil {
		return err
	}
	vdata, err := json.MarshalIndent(vres, "", "  ")
	if err != nil {
		return err
	}
	vpath := filepath.Join(out, "BENCH_views.json")
	if err := resilience.WriteFileAtomic(vpath, append(vdata, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", vpath)

	ires, err := experiments.BenchIncremental(ctx, opts, repeats)
	if err != nil {
		return err
	}
	it := report.NewTable(
		fmt.Sprintf("bench: full-per-epoch vs incremental maintainers (best of %d)", repeats),
		"Pipeline", "Dataset", "Epochs", "Sources", "Full (s)", "Incremental (s)", "Speedup", "Identical", "Max SLEM diff")
	for _, e := range ires.Entries {
		if err := it.AddRow(e.Name, e.Dataset, report.Int(e.Epochs), report.Int(e.Sources),
			report.Float(e.FullSeconds, 4), report.Float(e.IncrementalSeconds, 4),
			report.Float(e.Speedup, 2), fmt.Sprintf("%v", e.Identical),
			fmt.Sprintf("%.2g", e.MaxSLEMDiff)); err != nil {
			return err
		}
	}
	if err := it.Render(w); err != nil {
		return err
	}
	idata, err := json.MarshalIndent(ires, "", "  ")
	if err != nil {
		return err
	}
	ipath := filepath.Join(out, "BENCH_incremental.json")
	if err := resilience.WriteFileAtomic(ipath, append(idata, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", ipath)

	sres, err := experiments.BenchScale(ctx, opts, 4, out)
	if err != nil {
		return err
	}
	stt := report.NewTable(
		fmt.Sprintf("bench: mmap-backed substrate, monolithic vs %d shards (n=%d, m=%d)",
			sres.Shards, sres.Nodes, sres.Edges),
		"Kernel", "Mono (s)", "Sharded (s)", "Ratio", "Identical")
	for _, e := range sres.Entries {
		if err := stt.AddRow(e.Name,
			report.Float(e.MonoSeconds, 4), report.Float(e.ShardedSeconds, 4),
			report.Float(e.Ratio, 2), fmt.Sprintf("%v", e.Identical)); err != nil {
			return err
		}
	}
	stt.AddNote(fmt.Sprintf("generated in %.2fs (%d spill runs), mapped in %.4fs, file %d bytes, peak RSS %d MiB",
		sres.GenerateSeconds, sres.SpillRuns, sres.OpenMappedSeconds, sres.FileBytes, sres.PeakRSSBytes>>20))
	if err := stt.Render(w); err != nil {
		return err
	}
	sdata, err := json.MarshalIndent(sres, "", "  ")
	if err != nil {
		return err
	}
	spath := filepath.Join(out, "BENCH_scale.json")
	if err := resilience.WriteFileAtomic(spath, append(sdata, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", spath)

	if !kres.Identical() {
		return fmt.Errorf("bench: kernel and naive result fingerprints diverged (see %s)", kpath)
	}
	if !vres.Identical() {
		return fmt.Errorf("bench: view and rebuild result fingerprints diverged (see %s)", vpath)
	}
	if !ires.Equivalent() {
		return fmt.Errorf("bench: incremental and full results diverged (see %s)", ipath)
	}
	if !sres.Identical() {
		return fmt.Errorf("bench: sharded and monolithic results diverged (see %s)", spath)
	}
	return nil
}
