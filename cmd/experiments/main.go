// Command experiments regenerates every table and figure of the paper's
// evaluation section from the synthetic dataset registry, writing ASCII
// tables and CSV series under -out (default ./out).
//
// Usage:
//
//	experiments                 # run everything (minutes)
//	experiments -run tableII    # one experiment
//	experiments -quick          # reduced sampling, seconds
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/trustnet/trustnet/internal/experiments"
	"github.com/trustnet/trustnet/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only  = fs.String("run", "", "run one experiment: tableI | figure1 | figure2 | tableII | figure3 | figure4 | figure5 | cross | dynamic | modulated | attacker | betweenness | sweep")
		quick = fs.Bool("quick", false, "reduced sampling for a fast smoke run")
		seed  = fs.Int64("seed", 1, "measurement seed")
		out   = fs.String("out", "out", "output directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed}
	ctx := context.Background()

	type job struct {
		name string
		run  func() error
	}
	jobs := []job{
		{"tableI", func() error { return runTableI(opts, *out) }},
		{"figure1", func() error { return runFigure1(opts, *out) }},
		{"figure2", func() error { return runFigure2(opts, *out) }},
		{"tableII", func() error { return runTableII(opts, *out) }},
		{"figure3", func() error { return runFigure3(ctx, opts, *out) }},
		{"figure4", func() error { return runFigure4(ctx, opts, *out) }},
		{"figure5", func() error { return runFigure5(opts, *out) }},
		{"cross", func() error { return runCross(ctx, opts, *out) }},
		{"dynamic", func() error { return runDynamic(ctx, opts, *out) }},
		{"modulated", func() error { return runModulated(opts, *out) }},
		{"attacker", func() error { return runAttacker(opts, *out) }},
		{"betweenness", func() error { return runBetweenness(ctx, opts, *out) }},
		{"sweep", func() error { return runSweep(ctx, opts, *out) }},
	}
	ran := 0
	for _, j := range jobs {
		if *only != "" && !strings.EqualFold(*only, j.name) {
			continue
		}
		start := time.Now()
		fmt.Printf("== %s ==\n", j.name)
		if err := j.run(); err != nil {
			return fmt.Errorf("%s: %w", j.name, err)
		}
		fmt.Printf("(%s in %v)\n\n", j.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q", *only)
	}
	return nil
}

func runTableI(opts experiments.Options, out string) error {
	res, err := experiments.TableI(opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	return report.SaveTable(filepath.Join(out, "tableI.txt"), t)
}

func runFigure1(opts experiments.Options, out string) error {
	res, err := experiments.Figure1(opts)
	if err != nil {
		return err
	}
	if err := report.SaveCSV(filepath.Join(out, "figure1a.csv"), res.PanelA); err != nil {
		return err
	}
	if err := report.SaveCSV(filepath.Join(out, "figure1b.csv"), res.PanelB); err != nil {
		return err
	}
	if err := report.SaveCSV(filepath.Join(out, "figure1-sources.csv"), res.SourceECDFs); err != nil {
		return err
	}
	t := report.NewTable("Figure 1: mixing time T(0.1) per dataset (0 = not within budget)", "Dataset", "T(0.1)")
	for _, s := range append(res.PanelA, res.PanelB...) {
		if err := t.AddRow(s.Name, report.Int(res.MixingTimes[s.Name])); err != nil {
			return err
		}
	}
	return t.Render(os.Stdout)
}

func runFigure2(opts experiments.Options, out string) error {
	res, err := experiments.Figure2(opts)
	if err != nil {
		return err
	}
	if err := report.SaveCSV(filepath.Join(out, "figure2a.csv"), res.PanelA); err != nil {
		return err
	}
	if err := report.SaveCSV(filepath.Join(out, "figure2b.csv"), res.PanelB); err != nil {
		return err
	}
	t := report.NewTable("Figure 2: degeneracy per dataset", "Dataset", "Degeneracy")
	for _, s := range append(res.PanelA, res.PanelB...) {
		if err := t.AddRow(s.Name, report.Int(res.Degeneracy[s.Name])); err != nil {
			return err
		}
	}
	return t.Render(os.Stdout)
}

func runTableII(opts experiments.Options, out string) error {
	res, err := experiments.TableII(opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	return report.SaveTable(filepath.Join(out, "tableII.txt"), t)
}

func runFigure3(ctx context.Context, opts experiments.Options, out string) error {
	res, err := experiments.Figure3(ctx, opts)
	if err != nil {
		return err
	}
	for _, p := range res.Panels {
		path := filepath.Join(out, fmt.Sprintf("figure3-%s.csv", p.Name))
		if err := report.SaveCSV(path, []report.Series{p.Min, p.Mean, p.Max}); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d figure 3 panels\n", len(res.Panels))
	return nil
}

func runFigure4(ctx context.Context, opts experiments.Options, out string) error {
	res, err := experiments.Figure4(ctx, opts)
	if err != nil {
		return err
	}
	if err := report.SaveCSV(filepath.Join(out, "figure4a.csv"), res.PanelA); err != nil {
		return err
	}
	if err := report.SaveCSV(filepath.Join(out, "figure4b.csv"), res.PanelB); err != nil {
		return err
	}
	t := report.NewTable("Figure 4: mean expansion factor over small sets", "Dataset", "mean alpha")
	for _, s := range append(res.PanelA, res.PanelB...) {
		if err := t.AddRow(s.Name, report.Float(res.MeanAlphaSmall[s.Name], 3)); err != nil {
			return err
		}
	}
	return t.Render(os.Stdout)
}

func runFigure5(opts experiments.Options, out string) error {
	res, err := experiments.Figure5(opts)
	if err != nil {
		return err
	}
	t := report.NewTable("Figure 5: core structure", "Dataset", "Degeneracy", "Top cores")
	for _, p := range res.Panels {
		path := filepath.Join(out, fmt.Sprintf("figure5-%s.csv", p.Name))
		if err := report.SaveCSV(path, []report.Series{p.RelativeSize, p.LargestRelativeSize, p.NumCores}); err != nil {
			return err
		}
		if err := t.AddRow(p.Name, report.Int(p.Degeneracy), report.Int(p.TopComponents)); err != nil {
			return err
		}
	}
	return t.Render(os.Stdout)
}

func runDynamic(ctx context.Context, opts experiments.Options, out string) error {
	res, err := experiments.FutureWorkDynamic(ctx, opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if err := report.SaveTable(filepath.Join(out, "dynamic.txt"), t); err != nil {
		return err
	}
	return report.SaveCSV(filepath.Join(out, "dynamic.csv"),
		[]report.Series{res.SLEM, res.Mixing, res.MinAlpha, res.AvgDegree})
}

func runModulated(opts experiments.Options, out string) error {
	res, err := experiments.FutureWorkModulated(opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if err := report.SaveTable(filepath.Join(out, "modulated.txt"), t); err != nil {
		return err
	}
	return report.SaveCSV(filepath.Join(out, "modulated.csv"), res.Curves)
}

func runAttacker(opts experiments.Options, out string) error {
	res, err := experiments.AttackerModels(opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	return report.SaveTable(filepath.Join(out, "attacker.txt"), t)
}

func runBetweenness(ctx context.Context, opts experiments.Options, out string) error {
	res, err := experiments.BetweennessDistribution(ctx, opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if err := report.SaveTable(filepath.Join(out, "betweenness.txt"), t); err != nil {
		return err
	}
	return report.SaveCSV(filepath.Join(out, "betweenness.csv"), res.ECDFs)
}

func runSweep(ctx context.Context, opts experiments.Options, out string) error {
	res, err := experiments.BridgeSweep(ctx, opts)
	if err != nil {
		return err
	}
	t, err := res.Table()
	if err != nil {
		return err
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	return report.SaveTable(filepath.Join(out, "sweep.txt"), t)
}

func runCross(ctx context.Context, opts experiments.Options, out string) error {
	res, err := experiments.CrossProperty(ctx, opts)
	if err != nil {
		return err
	}
	sum, err := res.SummaryTable()
	if err != nil {
		return err
	}
	corr, err := res.CorrelationTable()
	if err != nil {
		return err
	}
	if err := sum.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	if err := corr.Render(os.Stdout); err != nil {
		return err
	}
	if err := report.SaveTable(filepath.Join(out, "cross-summary.txt"), sum); err != nil {
		return err
	}
	return report.SaveTable(filepath.Join(out, "cross-correlations.txt"), corr)
}
