package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/trustnet/trustnet/internal/resilience"
)

// testRunnerConfig is the legacy runner behavior — no retries, no
// checkpoint store — used by tests that exercise timeout/panic/keep-going
// handling in isolation.
func testRunnerConfig(timeout time.Duration, keepGoing bool) runnerConfig {
	return runnerConfig{
		timeout:   timeout,
		keepGoing: keepGoing,
		policy:    resilience.Policy{MaxAttempts: 1},
	}
}

// The failure summary must include the recovered panic stack so the
// crashing frame survives into logs.
func TestRunJobsPanicStackInSummary(t *testing.T) {
	jobs := []job{
		{name: "detonator", run: func(ctx context.Context) error { panic("boom with stack") }},
	}
	var buf bytes.Buffer
	err := runJobs(context.Background(), jobs, testRunnerConfig(0, true), nil, &buf)
	if err == nil {
		t.Fatal("panicking job: want error")
	}
	out := buf.String()
	if !strings.Contains(out, "panic stack for detonator") {
		t.Fatalf("summary does not include the panic stack header:\n%s", out)
	}
	if !strings.Contains(out, "goroutine ") {
		t.Fatalf("no goroutine stack in output:\n%s", out)
	}
	// The stack must name the panicking function, not just the runner.
	if !strings.Contains(out, "TestRunJobsPanicStackInSummary") {
		t.Fatalf("stack does not reach the panicking frame:\n%s", out)
	}
	if !strings.Contains(out, "transient") {
		t.Fatalf("summary table does not classify the panic:\n%s", out)
	}
}

func TestRunJobsRetriesTransient(t *testing.T) {
	calls := 0
	jobs := []job{
		{name: "flaky", run: func(ctx context.Context) error {
			calls++
			if calls < 3 {
				return resilience.MarkTransient(errors.New("injected"))
			}
			return nil
		}},
	}
	rc := testRunnerConfig(0, true)
	rc.policy = resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1}
	var buf bytes.Buffer
	if err := runJobs(context.Background(), jobs, rc, nil, &buf); err != nil {
		t.Fatalf("transient failures within budget: %v", err)
	}
	if calls != 3 {
		t.Fatalf("job ran %d times, want 3", calls)
	}
	if got := strings.Count(buf.String(), "RETRY flaky"); got != 2 {
		t.Fatalf("RETRY logged %d times, want 2:\n%s", got, buf.String())
	}
}

func TestRunJobsFatalNotRetried(t *testing.T) {
	calls := 0
	jobs := []job{
		{name: "broken", run: func(ctx context.Context) error { calls++; return errors.New("deterministic") }},
	}
	rc := testRunnerConfig(0, true)
	rc.policy = resilience.Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, Seed: 1}
	var buf bytes.Buffer
	if err := runJobs(context.Background(), jobs, rc, nil, &buf); err == nil {
		t.Fatal("fatal job: want error")
	}
	if calls != 1 {
		t.Fatalf("fatal job ran %d times, want 1", calls)
	}
	if !strings.Contains(buf.String(), "fatal") {
		t.Fatalf("summary does not classify the failure:\n%s", buf.String())
	}
}

func TestRunJobsResumeSkipsDone(t *testing.T) {
	store := resilience.NewStore(t.TempDir())
	fp := resilience.Fingerprint("job", "graph-aaaa", "cfg-0011")
	if err := store.Save(&resilience.Checkpoint{Job: "job-a", Fingerprint: fp, Status: resilience.StatusDone}); err != nil {
		t.Fatal(err)
	}
	ranB := false
	jobs := []job{
		{name: "a", fp: fp, run: func(ctx context.Context) error { return errors.New("must not run") }},
		{name: "b", fp: fp, run: func(ctx context.Context) error { ranB = true; return nil }},
	}
	rc := testRunnerConfig(0, true)
	rc.store, rc.resume = store, true
	var buf bytes.Buffer
	if err := runJobs(context.Background(), jobs, rc, nil, &buf); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !strings.Contains(buf.String(), "SKIP a") {
		t.Fatalf("done job not skipped:\n%s", buf.String())
	}
	if !ranB {
		t.Fatal("unfinished job did not run")
	}
	// b succeeded, so the rerun now holds a done checkpoint for it too.
	if c, err := store.Load("job-b", fp); err != nil || c == nil || c.Status != resilience.StatusDone {
		t.Fatalf("job-b checkpoint = %v, %v", c, err)
	}
}

// A stale fingerprint (changed configuration) must re-run the job
// rather than resume another configuration's checkpoint.
func TestRunJobsResumeIgnoresStaleFingerprint(t *testing.T) {
	store := resilience.NewStore(t.TempDir())
	if err := store.Save(&resilience.Checkpoint{
		Job: "job-a", Fingerprint: resilience.Fingerprint("job", "graph-aaaa", "cfg-9999"), Status: resilience.StatusDone,
	}); err != nil {
		t.Fatal(err)
	}
	ran := false
	jobs := []job{{
		name: "a",
		fp:   resilience.Fingerprint("job", "graph-aaaa", "cfg-0011"),
		run:  func(ctx context.Context) error { ran = true; return nil },
	}}
	rc := testRunnerConfig(0, true)
	rc.store, rc.resume = store, true
	var buf bytes.Buffer
	if err := runJobs(context.Background(), jobs, rc, nil, &buf); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("job with stale checkpoint was skipped")
	}
}

// Regression: job done-markers were once keyed only by (quick, seed,
// workers), so a checkpoint taken over one dataset registry silently
// resumed a run over a completely different substrate. The fingerprint
// now folds in the canonical graph fingerprint: same configuration,
// different graphs, no skip.
func TestRunJobsResumeKeyedByGraphFingerprint(t *testing.T) {
	store := resilience.NewStore(t.TempDir())
	const cfgFP = "cfg-0011"
	if err := store.Save(&resilience.Checkpoint{
		Job: "job-a", Fingerprint: resilience.Fingerprint("job", "graph-aaaa", cfgFP), Status: resilience.StatusDone,
	}); err != nil {
		t.Fatal(err)
	}
	ran := false
	jobs := []job{{
		name: "a",
		fp:   resilience.Fingerprint("job", "graph-bbbb", cfgFP),
		run:  func(ctx context.Context) error { ran = true; return nil },
	}}
	rc := testRunnerConfig(0, true)
	rc.store, rc.resume = store, true
	var buf bytes.Buffer
	if err := runJobs(context.Background(), jobs, rc, nil, &buf); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("checkpoint from a different graph substrate was resumed")
	}
}

// A cooperative best-effort job that returns nil shortly after its
// deadline fires is a success: the grace window exists precisely so
// partial results can be salvaged and written.
func TestRunOneGraceSalvagesBestEffort(t *testing.T) {
	j := job{name: "salvage", run: func(ctx context.Context) error {
		<-ctx.Done()
		time.Sleep(10 * time.Millisecond) // simulate writing partial artifacts
		return nil
	}}
	if err := runOne(context.Background(), j, 30*time.Millisecond); err != nil {
		t.Fatalf("salvaged job = %v, want nil", err)
	}
}

// A job that responds to its deadline with the context error (no
// salvage) still fails with a timeout.
func TestRunOneGraceStillTimesOut(t *testing.T) {
	j := job{name: "stubborn", run: func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}}
	err := runOne(context.Background(), j, 30*time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded in the chain", err)
	}
}
