package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	dir := t.TempDir()
	// Quick single runs; tableI also exercises the save path.
	for _, name := range []string{"tableI", "figure2", "figure5"} {
		if err := run([]string{"-quick", "-run", name, "-out", dir}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "tableI.txt")); err != nil {
		t.Errorf("tableI.txt not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figure2a.csv")); err != nil {
		t.Errorf("figure2a.csv not written: %v", err)
	}
}

func TestRunFigure1And4(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-dataset experiments are slow")
	}
	dir := t.TempDir()
	for _, name := range []string{"figure1", "figure4", "tableII"} {
		if err := run([]string{"-quick", "-run", name, "-out", dir}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, f := range []string{"figure1a.csv", "figure1b.csv", "figure4a.csv", "tableII.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s not written: %v", f, err)
		}
	}
}

func TestRunRemainingExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment run is slow")
	}
	dir := t.TempDir()
	for _, name := range []string{"figure3", "cross", "dynamic", "modulated", "attacker", "betweenness"} {
		if err := run([]string{"-quick", "-run", name, "-out", dir}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, f := range []string{
		"cross-summary.txt", "cross-correlations.txt", "dynamic.csv",
		"modulated.csv", "attacker.txt", "betweenness.csv",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s not written: %v", f, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nope", "-out", t.TempDir()}); err == nil {
		t.Error("run(-run nope): want error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("run(bad flag): want error")
	}
}
