package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/trustnet/trustnet/internal/experiments"
	"github.com/trustnet/trustnet/internal/obs"
)

func TestRunSingleExperiments(t *testing.T) {
	dir := t.TempDir()
	// Quick single runs; tableI also exercises the save path.
	for _, name := range []string{"tableI", "figure2", "figure5"} {
		if err := run([]string{"-quick", "-run", name, "-out", dir}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "tableI.txt")); err != nil {
		t.Errorf("tableI.txt not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "figure2a.csv")); err != nil {
		t.Errorf("figure2a.csv not written: %v", err)
	}
}

func TestRunFigure1And4(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-dataset experiments are slow")
	}
	dir := t.TempDir()
	for _, name := range []string{"figure1", "figure4", "tableII"} {
		if err := run([]string{"-quick", "-run", name, "-out", dir}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, f := range []string{"figure1a.csv", "figure1b.csv", "figure4a.csv", "tableII.txt"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s not written: %v", f, err)
		}
	}
}

func TestRunRemainingExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment run is slow")
	}
	dir := t.TempDir()
	for _, name := range []string{"figure3", "cross", "dynamic", "modulated", "attacker", "betweenness"} {
		if err := run([]string{"-quick", "-run", name, "-out", dir}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for _, f := range []string{
		"cross-summary.txt", "cross-correlations.txt", "dynamic.csv",
		"modulated.csv", "attacker.txt", "betweenness.csv",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s not written: %v", f, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "nope", "-out", t.TempDir()}); err == nil {
		t.Error("run(-run nope): want error")
	}
}

// A near-miss name fails fast with the nearest registered job as a
// suggestion, before any measurement work starts.
func TestRunUnknownExperimentSuggestsNearest(t *testing.T) {
	err := run([]string{"-run", "tabel1", "-out", t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), `did you mean "tableI"`) {
		t.Errorf("run(-run tabel1) = %v, want a tableI suggestion", err)
	}
}

// captureStdout redirects os.Stdout around fn; run() prints job output
// there directly.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	rp, wp, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = wp
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(rp)
		done <- string(data)
	}()
	runErr := fn()
	wp.Close()
	return <-done, runErr
}

// -list enumerates the registered battery with config fingerprints and
// does no measurement work.
func TestRunList(t *testing.T) {
	out, err := captureStdout(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"tableI", "figure1", "figure2", "tableII", "figure3", "figure4", "figure5",
		"cross", "dynamic", "modulated", "attacker", "betweenness", "sweep", "churn", "epochs",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
	if !regexp.MustCompile(`(?m)^tableI\s+[0-9a-f]{16}$`).MatchString(out) {
		t.Errorf("-list rows lack 16-hex config fingerprints:\n%s", out)
	}
}

// -run accepts a comma-separated subset, resolved through the registry.
func TestRunCommaSeparatedSubset(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-run", "tableI,figure2", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"tableI.txt", "figure2a.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s not written: %v", f, err)
		}
	}
	if err := run([]string{"-quick", "-run", "tableI,nope", "-out", t.TempDir()}); err == nil {
		t.Error("comma list with an unknown name: want error")
	}
}

// The artifact cache: an unchanged rerun replays the stored artifact
// byte-identically with zero job executions — verified through the
// CACHED line, the emitted files, and the METRICS counters.
func TestRunSecondRunIsCacheHit(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-run", "tableI", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(filepath.Join(dir, "tableI.txt"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"-quick", "-run", "tableI", "-out", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CACHED tableI") {
		t.Errorf("second run did not replay from cache:\n%s", out)
	}
	second, err := os.ReadFile(filepath.Join(dir, "tableI.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("replayed tableI.txt differs from the computed one")
	}
	// The job's METRICS window proves no kernel ran: one cache hit, zero
	// executions, no SLEM iterations.
	data, err := os.ReadFile(filepath.Join(dir, "METRICS.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Jobs []struct {
			Name    string `json:"name"`
			Status  string `json:"status"`
			Metrics struct {
				Counters map[string]int64 `json:"counters"`
			} `json:"metrics"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Jobs) != 1 || doc.Jobs[0].Name != "tableI" || doc.Jobs[0].Status != "ok" {
		t.Fatalf("jobs = %+v", doc.Jobs)
	}
	c := doc.Jobs[0].Metrics.Counters
	if c["jobs.cache.hits"] != 1 {
		t.Errorf("cache hits in the job window = %d, want 1 (counters: %v)", c["jobs.cache.hits"], c)
	}
	if c["jobs.run.executed"] != 0 {
		t.Errorf("executions in the job window = %d, want 0", c["jobs.run.executed"])
	}
	if c["spectral.slem.iterations"] != 0 {
		t.Errorf("SLEM iterations on a cache hit = %d, want 0", c["spectral.slem.iterations"])
	}
	// -no-cache forces a recompute even with a valid entry present.
	out, err = captureStdout(t, func() error {
		return run([]string{"-quick", "-run", "tableI", "-no-cache", "-out", dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "CACHED tableI") {
		t.Errorf("-no-cache still replayed from cache:\n%s", out)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("run(bad flag): want error")
	}
}

func TestRunChurnQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-dataset experiment is slow")
	}
	dir := t.TempDir()
	if err := run([]string{"-quick", "-run", "churn", "-out", dir}); err != nil {
		t.Fatalf("churn: %v", err)
	}
	for _, f := range []string{"churn.txt", "churn.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s not written: %v", f, err)
		}
	}
}

func TestRunJobsKeepGoingAfterFailure(t *testing.T) {
	var ran []string
	jobs := []job{
		{name: "boom", run: func(ctx context.Context) error { ran = append(ran, "boom"); return errors.New("kaput") }},
		{name: "after", run: func(ctx context.Context) error { ran = append(ran, "after"); return nil }},
	}
	var buf bytes.Buffer
	err := runJobs(context.Background(), jobs, testRunnerConfig(0, true), nil, &buf)
	if err == nil {
		t.Fatal("runJobs with a failing job: want error (nonzero exit)")
	}
	if len(ran) != 2 || ran[1] != "after" {
		t.Fatalf("jobs run = %v, want both despite the failure", ran)
	}
	out := buf.String()
	if !strings.Contains(out, "FAILED boom") || !strings.Contains(out, "1 of 2 jobs failed") {
		t.Errorf("summary missing from output:\n%s", out)
	}
}

func TestRunJobsPanicIsReportedFailure(t *testing.T) {
	var ran []string
	jobs := []job{
		{name: "panics", run: func(ctx context.Context) error { panic("exploded") }},
		{name: "survivor", run: func(ctx context.Context) error { ran = append(ran, "survivor"); return nil }},
	}
	var buf bytes.Buffer
	err := runJobs(context.Background(), jobs, testRunnerConfig(0, true), nil, &buf)
	if err == nil {
		t.Fatal("runJobs with a panicking job: want error")
	}
	if !strings.Contains(err.Error(), "panics") {
		t.Errorf("error %q does not name the panicking job", err)
	}
	if !strings.Contains(buf.String(), "panic: exploded") {
		t.Errorf("panic not converted to a reported failure:\n%s", buf.String())
	}
	if len(ran) != 1 {
		t.Fatalf("job after the panic did not run: %v", ran)
	}
}

func TestRunJobsTimeout(t *testing.T) {
	jobs := []job{
		{name: "slow", run: func(ctx context.Context) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(30 * time.Second):
				return nil
			}
		}},
		{name: "next", run: func(ctx context.Context) error { return nil }},
	}
	var buf bytes.Buffer
	start := time.Now()
	err := runJobs(context.Background(), jobs, testRunnerConfig(50*time.Millisecond, true), nil, &buf)
	if err == nil {
		t.Fatal("runJobs with a timed-out job: want error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("runner waited %v for a 50ms timeout", time.Since(start))
	}
	if !strings.Contains(buf.String(), "FAILED slow") || !strings.Contains(buf.String(), "timed out") {
		t.Errorf("timeout not reported:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "(next in") {
		t.Errorf("job after the timeout did not run:\n%s", buf.String())
	}
}

func TestRunJobsIgnoredContextStillTimesOut(t *testing.T) {
	// A job that never looks at its context cannot stall the runner.
	block := make(chan struct{})
	defer close(block)
	jobs := []job{{name: "stuck", run: func(ctx context.Context) error { <-block; return nil }}}
	var buf bytes.Buffer
	if err := runJobs(context.Background(), jobs, testRunnerConfig(50*time.Millisecond, true), nil, &buf); err == nil {
		t.Fatal("runJobs with a stuck job: want error")
	}
}

func TestRunJobsStopsWithoutKeepGoing(t *testing.T) {
	var ran []string
	jobs := []job{
		{name: "boom", run: func(ctx context.Context) error { return errors.New("kaput") }},
		{name: "after", run: func(ctx context.Context) error { ran = append(ran, "after"); return nil }},
	}
	var buf bytes.Buffer
	if err := runJobs(context.Background(), jobs, testRunnerConfig(0, false), nil, &buf); err == nil {
		t.Fatal("want error")
	}
	if len(ran) != 0 {
		t.Fatalf("-keep-going=false still ran later jobs: %v", ran)
	}
}

func TestRunBenchMode(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"bench", "-quick", "-workers", "4", "-bench-repeats", "1", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_parallel.json"))
	if err != nil {
		t.Fatalf("BENCH_parallel.json not written: %v", err)
	}
	var res struct {
		Workers int `json:"workers"`
		Entries []struct {
			Name      string  `json:"name"`
			Speedup   float64 `json:"speedup"`
			Identical bool    `json:"identical"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if res.Workers != 4 || len(res.Entries) != 3 {
		t.Errorf("workers=%d entries=%d, want 4 and 3", res.Workers, len(res.Entries))
	}
	for _, e := range res.Entries {
		if !e.Identical {
			t.Errorf("%s: workers=1 vs 4 results differ", e.Name)
		}
	}
}

// Regression: -h used to propagate flag.ErrHelp out of run, so asking
// for usage exited 1.
func TestRunHelpExitsZero(t *testing.T) {
	if err := run([]string{"-h"}); err != nil {
		t.Fatalf("run(-h) = %v, want nil", err)
	}
}

// syncWriter serializes writes so an abandoned job goroutine racing the
// test's final read cannot trip the race detector.
type syncWriter struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// Regression: the tableI job discarded its context, so after a timeout
// the abandoned goroutine finished the measurement anyway and rendered
// its table into the middle of later jobs' output.
func TestRunJobsCanceledTableIWritesNothing(t *testing.T) {
	out := &syncWriter{}
	jobs := []job{{name: "tableI", run: func(ctx context.Context) error {
		res, err := experiments.TableI(ctx, experiments.Options{Quick: true, Seed: 1})
		if err != nil {
			return err
		}
		tb, err := res.Table()
		if err != nil {
			return err
		}
		return tb.Render(out)
	}}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := runJobs(ctx, jobs, testRunnerConfig(0, true), nil, out); err == nil {
		t.Fatal("canceled run: want error")
	}
	// Grace period for a ctx-ignoring job to misbehave before we look.
	time.Sleep(100 * time.Millisecond)
	if s := out.String(); strings.Contains(s, "Table I:") {
		t.Errorf("job rendered its table after cancellation:\n%s", s)
	}
}

// Every run writes METRICS.json with the per-job resource and metrics
// window next to the experiment artifacts.
func TestRunWritesMetrics(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-run", "tableI", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "METRICS.json"))
	if err != nil {
		t.Fatalf("METRICS.json not written: %v", err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Jobs   []struct {
			Name        string  `json:"name"`
			Status      string  `json:"status"`
			WallSeconds float64 `json:"wall_seconds"`
			Allocs      uint64  `json:"allocs"`
			Metrics     struct {
				Counters map[string]int64 `json:"counters"`
				Timers   map[string]struct {
					Count int64 `json:"count"`
				} `json:"timers"`
				Spans []struct {
					Stage string `json:"stage"`
				} `json:"spans"`
			} `json:"metrics"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid METRICS.json: %v", err)
	}
	if doc.Schema != "trustnet/metrics/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if len(doc.Jobs) != 1 || doc.Jobs[0].Name != "tableI" || doc.Jobs[0].Status != "ok" {
		t.Fatalf("jobs = %+v, want one ok tableI entry", doc.Jobs)
	}
	j := doc.Jobs[0]
	if j.WallSeconds <= 0 || j.Allocs == 0 {
		t.Errorf("wall=%v allocs=%d, want both positive", j.WallSeconds, j.Allocs)
	}
	if j.Metrics.Counters["spectral.slem.iterations"] == 0 {
		t.Errorf("no SLEM iterations attributed to tableI: %v", j.Metrics.Counters)
	}
	if j.Metrics.Timers["spectral.slem"].Count == 0 {
		t.Error("no spectral.slem timer observations")
	}
	found := false
	for _, s := range j.Metrics.Spans {
		if s.Stage == "spectral.slem" {
			found = true
		}
	}
	if !found {
		t.Error("no spectral.slem span in the job window")
	}
}

// The -metrics-addr endpoint serves registry snapshots as JSON, and is
// torn down with a graceful drain rather than a connection-severing
// Close.
func TestServeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("cmd.test.metric").Add(3)
	srv, addr, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if derr := obs.DrainServer(srv, time.Second); derr != nil {
			t.Errorf("drain: %v", derr)
		}
	}()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["cmd.test.metric"] != 3 {
		t.Errorf("counters = %v", snap.Counters)
	}
}
