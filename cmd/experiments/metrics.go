package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/trustnet/trustnet/internal/obs"
	"github.com/trustnet/trustnet/internal/resilience"
)

// metricsSchema versions the METRICS.json layout so downstream tooling
// (the CI artifact diff, notebooks) can detect incompatible changes.
const metricsSchema = "trustnet/metrics/v1"

// jobMetrics is one runner job's window in METRICS.json: wall clock,
// allocator deltas, heap state at completion, and the observability
// deltas (counters, gauges, timers, spans) attributed to the job. Jobs
// run sequentially, so diffing the shared registry snapshot around each
// job attributes every metric unambiguously.
type jobMetrics struct {
	Name   string `json:"name"`
	Status string `json:"status"` // "ok", "failed", or "skipped" (resumed from a done checkpoint)
	Error  string `json:"error,omitempty"`
	// Attempts counts how many times the job ran, > 1 when the retry
	// policy re-ran a transient failure. 0 for skipped jobs.
	Attempts    int     `json:"attempts,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	// Allocs and AllocBytes are deltas of the runtime's cumulative
	// malloc count and allocated bytes across the job.
	Allocs     uint64 `json:"allocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
	// HeapSysBytes is the heap memory obtained from the OS at job end —
	// the closest MemStats proxy for peak heap footprint, since it grows
	// to cover the high-water mark and is released back only lazily.
	HeapSysBytes   uint64       `json:"heap_sys_bytes"`
	HeapInuseBytes uint64       `json:"heap_inuse_bytes"`
	Metrics        obs.Snapshot `json:"metrics"`
}

// metricsFile is the METRICS.json document written after every run.
type metricsFile struct {
	Schema       string       `json:"schema"`
	Quick        bool         `json:"quick"`
	Seed         int64        `json:"seed"`
	Workers      int          `json:"workers"`
	GOMAXPROCS   int          `json:"gomaxprocs"`
	Jobs         []jobMetrics `json:"jobs"`
	TotalSeconds float64      `json:"total_seconds"`
	Failed       int          `json:"failed"`
}

// metricsCollector accumulates per-job windows over the shared obs
// registry and the runtime allocator counters.
type metricsCollector struct {
	reg   *obs.Registry
	prev  obs.Snapshot
	start time.Time
	doc   metricsFile
}

func newMetricsCollector(reg *obs.Registry, quick bool, seed int64, workers int) *metricsCollector {
	return &metricsCollector{
		reg:   reg,
		prev:  reg.Snapshot(),
		start: time.Now(),
		doc: metricsFile{
			Schema:     metricsSchema,
			Quick:      quick,
			Seed:       seed,
			Workers:    workers,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}
}

// rebase advances the registry baseline so setup work done between
// collector creation and the first job (substrate fingerprinting, cache
// probes) is excluded from the first job's metrics window.
func (c *metricsCollector) rebase() { c.prev = c.reg.Snapshot() }

// beforeJob samples the allocator state the job's deltas are measured
// against.
func (c *metricsCollector) beforeJob() runtime.MemStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms
}

// afterJob closes the job's window: allocator deltas, heap state, and
// the registry diff since the previous job.
func (c *metricsCollector) afterJob(name string, jobErr error, wall time.Duration, before runtime.MemStats, attempts int) {
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	snap := c.reg.Snapshot()
	jm := jobMetrics{
		Name:           name,
		Status:         "ok",
		Attempts:       attempts,
		WallSeconds:    wall.Seconds(),
		Allocs:         after.Mallocs - before.Mallocs,
		AllocBytes:     after.TotalAlloc - before.TotalAlloc,
		HeapSysBytes:   after.HeapSys,
		HeapInuseBytes: after.HeapInuse,
		Metrics:        snap.DiffSince(c.prev),
	}
	if jobErr != nil {
		jm.Status = "failed"
		jm.Error = jobErr.Error()
		c.doc.Failed++
	}
	c.prev = snap
	c.doc.Jobs = append(c.doc.Jobs, jm)
}

// skipJob records a job that a resumed run reused from its done
// checkpoint without re-running. The registry snapshot still advances so
// the next job's window stays unpolluted.
func (c *metricsCollector) skipJob(name string) {
	c.prev = c.reg.Snapshot()
	c.doc.Jobs = append(c.doc.Jobs, jobMetrics{Name: name, Status: "skipped"})
}

// write finalizes totals and writes METRICS.json under dir, returning
// the path written.
func (c *metricsCollector) write(dir string) (string, error) {
	c.doc.TotalSeconds = time.Since(c.start).Seconds()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("metrics: %w", err)
	}
	data, err := json.MarshalIndent(&c.doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("metrics: %w", err)
	}
	path := filepath.Join(dir, "METRICS.json")
	// Atomic so a crash mid-write (the exact scenario the checkpoint
	// store exists for) never leaves a truncated METRICS.json behind.
	if err := resilience.WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("metrics: %w", err)
	}
	return path, nil
}
