// Command sybilbench runs any of the seven implemented social-network
// Sybil defenses (GateKeeper, SybilGuard, SybilLimit, SybilInfer, SumUp,
// community-rank, bridge-cut) under a parameterized attack and reports
// the standard metrics (honest acceptance rate, sybils accepted per
// attack edge).
//
// Usage:
//
//	sybilbench -dataset facebook-b -defense gatekeeper -sybils 500 -attack-edges 10
//	sybilbench -dataset wiki-vote -defense all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/report"
	"github.com/trustnet/trustnet/internal/sybil"
	"github.com/trustnet/trustnet/internal/sybil/bridgecut"
	"github.com/trustnet/trustnet/internal/sybil/communityrank"
	"github.com/trustnet/trustnet/internal/sybil/gatekeeper"
	"github.com/trustnet/trustnet/internal/sybil/sumup"
	"github.com/trustnet/trustnet/internal/sybil/sybilguard"
	"github.com/trustnet/trustnet/internal/sybil/sybilinfer"
	"github.com/trustnet/trustnet/internal/sybil/sybillimit"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sybilbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sybilbench", flag.ContinueOnError)
	var (
		dataset     = fs.String("dataset", "wiki-vote", "registry dataset for the honest region")
		in          = fs.String("in", "", "edge-list file for the honest region (overrides -dataset)")
		defense     = fs.String("defense", "all", "gatekeeper | sybilguard | sybillimit | sybilinfer | sumup | communityrank | bridgecut | all")
		sybils      = fs.Int("sybils", 0, "sybil identities (default n/5)")
		attackEdges = fs.Int("attack-edges", 0, "attack edges (default n/50)")
		verifier    = fs.Int("verifier", 0, "verifier/controller/collector node")
		f           = fs.Float64("f", 0.2, "gatekeeper admission threshold")
		seed        = fs.Int64("seed", 1, "seed for attack and defense randomness")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var honest *graph.Graph
	var err error
	if *in != "" {
		honest, err = graph.LoadEdgeList(*in)
	} else {
		var spec datasets.Spec
		spec, err = datasets.ByName(*dataset)
		if err == nil {
			honest, err = spec.Generate()
		}
	}
	if err != nil {
		return err
	}
	if !graph.IsConnected(honest) {
		honest, _ = graph.LargestComponent(honest)
	}

	n := honest.NumNodes()
	ns := *sybils
	if ns == 0 {
		ns = n / 5
	}
	ae := *attackEdges
	if ae == 0 {
		ae = n / 50
		if ae < 2 {
			ae = 2
		}
	}
	a, err := sybil.Inject(honest, sybil.AttackConfig{SybilNodes: ns, AttackEdges: ae, Seed: *seed})
	if err != nil {
		return err
	}
	v := graph.NodeID(*verifier)
	fmt.Printf("honest n=%d m=%d; sybils=%d attack edges=%d; verifier=%d\n\n",
		n, honest.NumEdges(), ns, ae, v)

	t := report.NewTable("Defense comparison", "Defense", "Honest %", "Sybils/edge", "Sybil count")
	runOne := func(name string, acceptedFn func() ([]bool, error)) error {
		if *defense != "all" && *defense != name {
			return nil
		}
		accepted, err := acceptedFn()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		m, err := sybil.Evaluate(a, accepted, v)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		return t.AddRow(name,
			report.Float(100*m.HonestAcceptRate(), 1),
			report.Float(m.SybilsPerAttackEdge(), 2),
			report.Int(m.SybilAccepted))
	}

	if err := runOne("gatekeeper", func() ([]bool, error) {
		out, err := gatekeeper.Run(a, v, gatekeeper.Config{Distributers: 99, Seed: *seed})
		if err != nil {
			return nil, err
		}
		return out.Accepted(*f)
	}); err != nil {
		return err
	}
	if err := runOne("sybilguard", func() ([]bool, error) {
		return sybilguard.Run(a, v, sybilguard.Config{Seed: *seed})
	}); err != nil {
		return err
	}
	if err := runOne("sybillimit", func() ([]bool, error) {
		res, err := sybillimit.Run(a, v, sybillimit.Config{Seed: *seed})
		if err != nil {
			return nil, err
		}
		return res.Accepted, nil
	}); err != nil {
		return err
	}
	if err := runOne("sybilinfer", func() ([]bool, error) {
		res, err := sybilinfer.Run(a, v, sybilinfer.Config{Seed: *seed})
		if err != nil {
			return nil, err
		}
		return res.Accepted, nil
	}); err != nil {
		return err
	}
	if err := runOne("sumup", func() ([]bool, error) {
		res, err := sumup.Run(a, v, sumup.Config{Tickets: n})
		if err != nil {
			return nil, err
		}
		return res.Collected, nil
	}); err != nil {
		return err
	}
	if err := runOne("communityrank", func() ([]bool, error) {
		res, err := communityrank.Run(a, v, communityrank.Config{})
		if err != nil {
			return nil, err
		}
		return res.Accepted, nil
	}); err != nil {
		return err
	}
	if err := runOne("bridgecut", func() ([]bool, error) {
		res, err := bridgecut.Run(context.Background(), a, v, bridgecut.Config{})
		if err != nil {
			return nil, err
		}
		return res.Accepted, nil
	}); err != nil {
		return err
	}

	if t.NumRows() == 0 {
		return fmt.Errorf("unknown defense %q", *defense)
	}
	return t.Render(os.Stdout)
}
