package main

import (
	"path/filepath"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func TestRunSingleDefense(t *testing.T) {
	for _, defense := range []string{"gatekeeper", "sybillimit", "sumup"} {
		args := []string{
			"-dataset", "rice-grad", "-defense", defense,
			"-sybils", "50", "-attack-edges", "3",
		}
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", defense, err)
		}
	}
}

func TestRunAllDefenses(t *testing.T) {
	if testing.Short() {
		t.Skip("all-defense comparison is slow")
	}
	args := []string{
		"-dataset", "rice-grad", "-defense", "all",
		"-sybils", "40", "-attack-edges", "2",
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	g, err := gen.BarabasiAlbert(150, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := graph.SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	args := []string{"-in", path, "-defense", "gatekeeper", "-sybils", "20", "-attack-edges", "2"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{"-dataset", "nope"},
		{"-dataset", "rice-grad", "-defense", "nope", "-sybils", "10", "-attack-edges", "2"},
		{"-in", filepath.Join(t.TempDir(), "missing.txt")},
		{"-dataset", "rice-grad", "-defense", "gatekeeper", "-sybils", "10", "-attack-edges", "2", "-verifier", "9999"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

func TestRunDefaultSizes(t *testing.T) {
	// Zero sybils/attack-edges pick the n/5 and n/50 defaults.
	args := []string{"-dataset", "rice-grad", "-defense", "gatekeeper"}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
}
