package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/trustnet/trustnet/internal/graph"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDatasetToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.txt")
	if err := run([]string{"-dataset", "rice-grad", "-out", out}); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadEdgeList(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 500 {
		t.Errorf("nodes = %d, want 500", g.NumNodes())
	}
}

func TestRunModels(t *testing.T) {
	dir := t.TempDir()
	tests := []struct {
		name string
		args []string
	}{
		{"ba", []string{"-model", "ba", "-n", "100", "-param", "3"}},
		{"gnp", []string{"-model", "gnp", "-n", "100", "-param", "0.05"}},
		{"gnm", []string{"-model", "gnm", "-n", "100", "-param", "200"}},
		{"ws", []string{"-model", "ws", "-n", "100", "-param", "4", "-beta", "0.2"}},
		{"sbm", []string{"-model", "sbm", "-n", "120", "-param", "0.3", "-communities", "3"}},
		{"clustered", []string{"-model", "clustered", "-n", "200", "-param", "3", "-communities", "4", "-bridges", "2"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := filepath.Join(dir, tt.name+".txt")
			args := append(tt.args, "-out", out)
			if err := run(args); err != nil {
				t.Fatal(err)
			}
			g, err := graph.LoadEdgeList(out)
			if err != nil {
				t.Fatal(err)
			}
			if g.NumEdges() == 0 {
				t.Error("generated graph has no edges")
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{},
		{"-model", "nope"},
		{"-dataset", "nope"},
		{"-dataset", "rice-grad", "-model", "ba"},
		{"-model", "ba", "-n", "2", "-param", "5"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

func TestRunStdout(t *testing.T) {
	// Default output is stdout; redirect to capture.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-model", "ba", "-n", "20", "-param", "2"})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	if !strings.Contains(string(buf[:n]), "# nodes: 20") {
		t.Errorf("stdout missing header: %q", string(buf[:n]))
	}
}

func TestRunBinaryOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.bin")
	if err := run([]string{"-model", "ba", "-n", "80", "-param", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadBinary(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 80 {
		t.Errorf("nodes = %d, want 80", g.NumNodes())
	}
}
