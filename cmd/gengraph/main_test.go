package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDatasetToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.txt")
	if err := run([]string{"-dataset", "rice-grad", "-out", out}); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadEdgeList(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 500 {
		t.Errorf("nodes = %d, want 500", g.NumNodes())
	}
}

func TestRunModels(t *testing.T) {
	dir := t.TempDir()
	tests := []struct {
		name string
		args []string
	}{
		{"ba", []string{"-model", "ba", "-n", "100", "-param", "3"}},
		{"gnp", []string{"-model", "gnp", "-n", "100", "-param", "0.05"}},
		{"gnm", []string{"-model", "gnm", "-n", "100", "-param", "200"}},
		{"ws", []string{"-model", "ws", "-n", "100", "-param", "4", "-beta", "0.2"}},
		{"sbm", []string{"-model", "sbm", "-n", "120", "-param", "0.3", "-communities", "3"}},
		{"clustered", []string{"-model", "clustered", "-n", "200", "-param", "3", "-communities", "4", "-bridges", "2"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := filepath.Join(dir, tt.name+".txt")
			args := append(tt.args, "-out", out)
			if err := run(args); err != nil {
				t.Fatal(err)
			}
			g, err := graph.LoadEdgeList(out)
			if err != nil {
				t.Fatal(err)
			}
			if g.NumEdges() == 0 {
				t.Error("generated graph has no edges")
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{},
		{"-model", "nope"},
		{"-dataset", "nope"},
		{"-dataset", "rice-grad", "-model", "ba"},
		{"-model", "ba", "-n", "2", "-param", "5"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

func TestRunStdout(t *testing.T) {
	// Default output is stdout; redirect to capture.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run([]string{"-model", "ba", "-n", "20", "-param", "2"})
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	if !strings.Contains(string(buf[:n]), "# nodes: 20") {
		t.Errorf("stdout missing header: %q", string(buf[:n]))
	}
}

func TestRunBinaryOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.bin")
	if err := run([]string{"-model", "ba", "-n", "80", "-param", "3", "-out", out}); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadBinary(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 80 {
		t.Errorf("nodes = %d, want 80", g.NumNodes())
	}
}

func TestRunFormatOutputs(t *testing.T) {
	dir := t.TempDir()
	// Extension-inferred TNG2.
	tng2 := filepath.Join(dir, "g.tng2")
	if err := run([]string{"-model", "ba", "-n", "90", "-param", "3", "-out", tng2}); err != nil {
		t.Fatal(err)
	}
	g2, err := graph.LoadCSR(tng2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 90 {
		t.Errorf("tng2 nodes = %d, want 90", g2.NumNodes())
	}
	// Explicit -format overrides the extension.
	dat := filepath.Join(dir, "g.dat")
	if err := run([]string{"-model", "ba", "-n", "90", "-param", "3", "-format", "tng1", "-out", dat}); err != nil {
		t.Fatal(err)
	}
	g1, err := graph.LoadBinary(dat)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumNodes() != 90 {
		t.Errorf("tng1 nodes = %d, want 90", g1.NumNodes())
	}
	// Binary formats cannot go to stdout.
	if err := run([]string{"-model", "ba", "-n", "20", "-param", "2", "-format", "tng2"}); err == nil {
		t.Error("tng2 to stdout: want error")
	}
	if err := run([]string{"-model", "ba", "-n", "20", "-param", "2", "-format", "nope", "-out", filepath.Join(dir, "x")}); err == nil {
		t.Error("unknown format: want error")
	}
}

func TestRunStreamed(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ba.tng2")
	if err := run([]string{"-model", "ba", "-n", "400", "-param", "3", "-seed", "9", "-stream", "-out", out}); err != nil {
		t.Fatal(err)
	}
	got, err := graph.LoadCSR(out)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gen.BarabasiAlbert(400, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("streamed graph (%d, %d) != eager (%d, %d)",
			got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	// Streaming constraints.
	for _, args := range [][]string{
		{"-model", "ba", "-n", "50", "-param", "3", "-stream"},
		{"-model", "ba", "-n", "50", "-param", "3", "-stream", "-format", "tng1", "-out", out},
		{"-model", "gnp", "-n", "50", "-param", "0.1", "-stream", "-out", out},
		{"-dataset", "rice-grad", "-stream", "-out", out},
		{"-stream", "-out", out},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

func TestRunConvert(t *testing.T) {
	dir := t.TempDir()
	txt := filepath.Join(dir, "g.txt")
	if err := run([]string{"-model", "ba", "-n", "120", "-param", "3", "-seed", "6", "-out", txt}); err != nil {
		t.Fatal(err)
	}
	orig, err := graph.LoadEdgeList(txt)
	if err != nil {
		t.Fatal(err)
	}

	// text -> tng1 -> tng2 (streamed) -> text round trip.
	bin := filepath.Join(dir, "g.bin")
	if err := run([]string{"convert", "-in", txt, "-out", bin}); err != nil {
		t.Fatal(err)
	}
	tng2 := filepath.Join(dir, "g.tng2")
	if err := run([]string{"convert", "-in", bin, "-out", tng2}); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(dir, "back.txt")
	if err := run([]string{"convert", "-in", tng2, "-out", back}); err != nil {
		t.Fatal(err)
	}
	got, err := graph.LoadEdgeList(back)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != orig.NumNodes() || got.NumEdges() != orig.NumEdges() {
		t.Fatalf("round trip (%d, %d) != original (%d, %d)",
			got.NumNodes(), got.NumEdges(), orig.NumNodes(), orig.NumEdges())
	}
	gotEdges, origEdges := got.Edges(), orig.Edges()
	for i := range origEdges {
		if gotEdges[i] != origEdges[i] {
			t.Fatalf("edge %d: %v != %v", i, gotEdges[i], origEdges[i])
		}
	}

	for _, args := range [][]string{
		{"convert"},
		{"convert", "-in", txt},
		{"convert", "-in", filepath.Join(dir, "missing.txt"), "-out", back},
		{"convert", "-in", txt, "-out", back, "-from", "nope"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}
