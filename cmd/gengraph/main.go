// Command gengraph generates synthetic social graphs — either a named
// dataset stand-in from the Table I registry or a raw model — and writes
// them as edge-list text, TNG1 binary, or TNG2 CSR files. Large graphs
// can be streamed straight to TNG2 in bounded memory, and the convert
// subcommand translates between the three formats.
//
// Usage:
//
//	gengraph -dataset wiki-vote -out wiki-vote.txt
//	gengraph -model ba -n 5000 -param 8 -seed 42 -out ba.txt
//	gengraph -model ba -n 1000000 -param 8 -stream -out ba.tng2
//	gengraph convert -in ba.bin -out ba.tng2
//	gengraph -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "convert" {
		return runConvert(args[1:])
	}
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list registry datasets and exit")
		dataset = fs.String("dataset", "", "registry dataset name to generate")
		model   = fs.String("model", "", "raw model: ba | gnp | gnm | ws | rmat | sbm | clustered")
		n       = fs.Int("n", 1000, "number of nodes (raw models)")
		param   = fs.Float64("param", 4, "model parameter: attach (ba), p (gnp), m (gnm), k (ws)")
		beta    = fs.Float64("beta", 0.1, "rewiring probability (ws)")
		comms   = fs.Int("communities", 8, "communities (sbm, clustered)")
		bridges = fs.Int("bridges", 2, "bridges per community pair (clustered)")
		seed    = fs.Int64("seed", 1, "generator seed")
		out     = fs.String("out", "", "output path (default stdout, text only)")
		format  = fs.String("format", "", "output format: text | tng1 | tng2 (default inferred from -out extension)")
		stream  = fs.Bool("stream", false, "stream the generator through the bounded-memory CSR writer (ba, rmat, sbm, clustered; implies tng2, requires -out)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, spec := range datasets.All() {
			fmt.Printf("%-14s %-12s band=%-6s paper n=%d m=%d\n",
				spec.Name, spec.Class, spec.Band, spec.PaperNodes, spec.PaperEdges)
		}
		return nil
	}

	if *stream {
		if *out == "" {
			return fmt.Errorf("-stream requires -out")
		}
		if *format != "" && *format != "tng2" {
			return fmt.Errorf("-stream writes tng2, not %q", *format)
		}
		es, err := buildStream(*dataset, *model, *n, *param, *comms, *bridges, *seed)
		if err != nil {
			return err
		}
		st, err := gen.StreamToFile(es, *out)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d nodes, %d edges (%d spill runs, %d spilled bytes)\n",
			*out, st.Nodes, st.Edges, st.Runs, st.SpilledBytes)
		return nil
	}

	g, err := buildGraph(*dataset, *model, *n, *param, *beta, *comms, *bridges, *seed)
	if err != nil {
		return err
	}
	f, err := resolveFormat(*format, *out)
	if err != nil {
		return err
	}
	if *out == "" {
		if f != "text" {
			return fmt.Errorf("format %s requires -out", f)
		}
		return graph.WriteEdgeList(os.Stdout, g)
	}
	var save func(string, *graph.Graph) error
	switch f {
	case "text":
		save = graph.SaveEdgeList
	case "tng1":
		save = graph.SaveBinary
	case "tng2":
		save = func(path string, g *graph.Graph) error { return graph.SaveCSR(path, g) }
	}
	if err := save(*out, g); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d nodes, %d edges\n", *out, g.NumNodes(), g.NumEdges())
	return nil
}

// resolveFormat picks the output format: an explicit -format wins, then
// the path extension (.bin/.tng1 binary, .tng2 CSR), then text.
func resolveFormat(format, path string) (string, error) {
	switch format {
	case "text", "tng1", "tng2":
		return format, nil
	case "":
	default:
		return "", fmt.Errorf("unknown format %q (want text, tng1, or tng2)", format)
	}
	switch filepath.Ext(path) {
	case ".bin", ".tng1":
		return "tng1", nil
	case ".tng2":
		return "tng2", nil
	}
	return "text", nil
}

// buildStream resolves the streaming counterpart of buildGraph's models.
func buildStream(dataset, model string, n int, param float64, comms, bridges int, seed int64) (gen.EdgeStream, error) {
	if dataset != "" {
		return nil, fmt.Errorf("-stream works with -model, not -dataset")
	}
	switch model {
	case "ba":
		return gen.StreamBA(n, int(param), seed)
	case "rmat":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		return gen.StreamRMAT(gen.RMATConfig{
			Scale: scale, Edges: int64(param),
			A: 0.57, B: 0.19, C: 0.19, Noise: 0.1, Seed: seed,
		})
	case "sbm":
		sizes := make([]int, comms)
		for i := range sizes {
			sizes[i] = n / comms
		}
		return gen.StreamSBM(gen.SBMConfig{BlockSizes: sizes, PIn: param, POut: param / 50, Seed: seed})
	case "clustered":
		return gen.StreamClusteredPA(gen.ClusteredPAConfig{
			Communities:   comms,
			CommunitySize: n / comms,
			Attach:        int(param),
			Bridges:       bridges,
			Seed:          seed,
		})
	case "":
		return nil, fmt.Errorf("-stream requires -model")
	default:
		return nil, fmt.Errorf("model %q has no streaming generator (want ba, rmat, sbm, or clustered)", model)
	}
}

// runConvert translates a graph file between text, TNG1 and TNG2. The
// TNG1 -> TNG2 direction streams through the CSR writer in bounded
// memory (one checksum-validating pass for the node count, one for the
// edges); every other direction loads the graph once.
func runConvert(args []string) error {
	fs := flag.NewFlagSet("gengraph convert", flag.ContinueOnError)
	var (
		in   = fs.String("in", "", "input graph file")
		out  = fs.String("out", "", "output graph file")
		from = fs.String("from", "", "input format override: text | tng1 | tng2")
		to   = fs.String("to", "", "output format override: text | tng1 | tng2")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("convert requires -in and -out")
	}
	src, err := resolveFormat(*from, *in)
	if err != nil {
		return err
	}
	dst, err := resolveFormat(*to, *out)
	if err != nil {
		return err
	}

	if src == "tng1" && dst == "tng2" {
		st, err := convertBinaryStreamed(*in, *out)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d nodes, %d edges (streamed)\n", *out, st.Nodes, st.Edges)
		return nil
	}

	var g *graph.Graph
	switch src {
	case "text":
		g, err = graph.LoadEdgeList(*in)
	case "tng1":
		g, err = graph.LoadBinary(*in)
	case "tng2":
		g, err = graph.LoadCSR(*in)
	}
	if err != nil {
		return err
	}
	switch dst {
	case "text":
		err = graph.SaveEdgeList(*out, g)
	case "tng1":
		err = graph.SaveBinary(*out, g)
	case "tng2":
		err = graph.SaveCSR(*out, g)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d nodes, %d edges\n", *out, g.NumNodes(), g.NumEdges())
	return nil
}

// convertBinaryStreamed converts a TNG1 file to TNG2 in bounded memory
// through gen.StreamTNG1 (which verifies the input checksum first).
func convertBinaryStreamed(in, out string) (graph.CSRStats, error) {
	es, err := gen.StreamTNG1(in)
	if err != nil {
		return graph.CSRStats{}, err
	}
	return gen.StreamToFile(es, out)
}

func buildGraph(dataset, model string, n int, param, beta float64, comms, bridges int, seed int64) (*graph.Graph, error) {
	switch {
	case dataset != "" && model != "":
		return nil, fmt.Errorf("use either -dataset or -model, not both")
	case dataset != "":
		spec, err := datasets.ByName(dataset)
		if err != nil {
			return nil, err
		}
		return spec.Generate()
	case model == "ba":
		return gen.BarabasiAlbert(n, int(param), seed)
	case model == "gnp":
		return gen.GNP(n, param, seed)
	case model == "gnm":
		return gen.GNM(n, int64(param), seed)
	case model == "ws":
		return gen.WattsStrogatz(n, int(param), beta, seed)
	case model == "rmat":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		return gen.RMAT(gen.RMATConfig{
			Scale: scale, Edges: int64(param),
			A: 0.57, B: 0.19, C: 0.19, Noise: 0.1, Seed: seed,
		})
	case model == "sbm":
		sizes := make([]int, comms)
		for i := range sizes {
			sizes[i] = n / comms
		}
		g, _, err := gen.SBM(gen.SBMConfig{BlockSizes: sizes, PIn: param, POut: param / 50, Seed: seed})
		return g, err
	case model == "clustered":
		g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
			Communities:   comms,
			CommunitySize: n / comms,
			Attach:        int(param),
			Bridges:       bridges,
			Seed:          seed,
		})
		return g, err
	case model != "":
		return nil, fmt.Errorf("unknown model %q", model)
	default:
		return nil, fmt.Errorf("one of -dataset, -model, or -list is required")
	}
}
