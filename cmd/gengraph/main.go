// Command gengraph generates synthetic social graphs — either a named
// dataset stand-in from the Table I registry or a raw model — and writes
// them as edge-list text files.
//
// Usage:
//
//	gengraph -dataset wiki-vote -out wiki-vote.txt
//	gengraph -model ba -n 5000 -param 8 -seed 42 -out ba.txt
//	gengraph -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list registry datasets and exit")
		dataset = fs.String("dataset", "", "registry dataset name to generate")
		model   = fs.String("model", "", "raw model: ba | gnp | gnm | ws | rmat | sbm | clustered")
		n       = fs.Int("n", 1000, "number of nodes (raw models)")
		param   = fs.Float64("param", 4, "model parameter: attach (ba), p (gnp), m (gnm), k (ws)")
		beta    = fs.Float64("beta", 0.1, "rewiring probability (ws)")
		comms   = fs.Int("communities", 8, "communities (sbm, clustered)")
		bridges = fs.Int("bridges", 2, "bridges per community pair (clustered)")
		seed    = fs.Int64("seed", 1, "generator seed")
		out     = fs.String("out", "", "output edge-list path (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, spec := range datasets.All() {
			fmt.Printf("%-14s %-12s band=%-6s paper n=%d m=%d\n",
				spec.Name, spec.Class, spec.Band, spec.PaperNodes, spec.PaperEdges)
		}
		return nil
	}

	g, err := buildGraph(*dataset, *model, *n, *param, *beta, *comms, *bridges, *seed)
	if err != nil {
		return err
	}
	if *out == "" {
		return graph.WriteEdgeList(os.Stdout, g)
	}
	// A .bin suffix selects the compact binary format.
	save := graph.SaveEdgeList
	if strings.HasSuffix(*out, ".bin") {
		save = graph.SaveBinary
	}
	if err := save(*out, g); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d nodes, %d edges\n", *out, g.NumNodes(), g.NumEdges())
	return nil
}

func buildGraph(dataset, model string, n int, param, beta float64, comms, bridges int, seed int64) (*graph.Graph, error) {
	switch {
	case dataset != "" && model != "":
		return nil, fmt.Errorf("use either -dataset or -model, not both")
	case dataset != "":
		spec, err := datasets.ByName(dataset)
		if err != nil {
			return nil, err
		}
		return spec.Generate()
	case model == "ba":
		return gen.BarabasiAlbert(n, int(param), seed)
	case model == "gnp":
		return gen.GNP(n, param, seed)
	case model == "gnm":
		return gen.GNM(n, int64(param), seed)
	case model == "ws":
		return gen.WattsStrogatz(n, int(param), beta, seed)
	case model == "rmat":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		return gen.RMAT(gen.RMATConfig{
			Scale: scale, Edges: int64(param),
			A: 0.57, B: 0.19, C: 0.19, Noise: 0.1, Seed: seed,
		})
	case model == "sbm":
		sizes := make([]int, comms)
		for i := range sizes {
			sizes[i] = n / comms
		}
		g, _, err := gen.SBM(gen.SBMConfig{BlockSizes: sizes, PIn: param, POut: param / 50, Seed: seed})
		return g, err
	case model == "clustered":
		g, _, err := gen.ClusteredPA(gen.ClusteredPAConfig{
			Communities:   comms,
			CommunitySize: n / comms,
			Attach:        int(param),
			Bridges:       bridges,
			Seed:          seed,
		})
		return g, err
	case model != "":
		return nil, fmt.Errorf("unknown model %q", model)
	default:
		return nil, fmt.Errorf("one of -dataset, -model, or -list is required")
	}
}
