package main

import (
	"path/filepath"
	"testing"

	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
)

func tempGraphFile(t *testing.T) string {
	t.Helper()
	g, err := gen.BarabasiAlbert(200, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := graph.SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllFromFile(t *testing.T) {
	path := tempGraphFile(t)
	if err := run([]string{"-in", path, "-sources", "5", "-steps", "30", "all"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunIndividualMeasurements(t *testing.T) {
	path := tempGraphFile(t)
	for _, what := range []string{"slem", "mixing", "cores", "expansion"} {
		if err := run([]string{"-in", path, "-sources", "5", "-steps", "20", what}); err != nil {
			t.Fatalf("%s: %v", what, err)
		}
	}
}

func TestRunCentralityAndCommunity(t *testing.T) {
	path := tempGraphFile(t)
	if err := run([]string{"-in", path, "-sources", "5", "-steps", "20", "centrality", "community"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDataset(t *testing.T) {
	if err := run([]string{"-dataset", "rice-grad", "-sources", "5", "-steps", "20", "-expansion-sources", "30", "cores"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := tempGraphFile(t)
	tests := [][]string{
		{},
		{"-in", path, "-dataset", "rice-grad"},
		{"-dataset", "nope"},
		{"-in", filepath.Join(t.TempDir(), "missing.txt")},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("run(%v): want error", args)
		}
	}
}

func TestRunBinaryInput(t *testing.T) {
	g, err := gen.BarabasiAlbert(150, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := graph.SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-sources", "5", "-steps", "20", "cores"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMappedInput(t *testing.T) {
	g, err := gen.BarabasiAlbert(180, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.tng2")
	if err := graph.SaveCSR(path, g); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", path, "-sources", "5", "-steps", "20", "cores"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunSharded measures the same mmap-backed graph at 1 and 3 shards;
// both must succeed (the report identity itself is covered by the
// TestEquivalenceSharded* suites).
func TestRunSharded(t *testing.T) {
	g, err := gen.BarabasiAlbert(250, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.tng2")
	if err := graph.SaveCSR(path, g); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []string{"1", "3"} {
		if err := run([]string{"-in", path, "-shards", shards, "-sources", "5", "-steps", "20", "all"}); err != nil {
			t.Fatalf("shards=%s: %v", shards, err)
		}
	}
	if err := run([]string{"-in", path, "-shards", "0", "cores"}); err == nil {
		t.Error("-shards 0: want error")
	}
}
