// Command measure runs the paper's property measurements on a graph: the
// mixing time (sampling method), the SLEM spectral bound, the k-core
// structure, and the expansion — individually or as the full suite.
//
// Usage:
//
//	measure -in graph.txt all
//	measure -dataset wiki-vote mixing
//	measure -dataset physics-1 -eps 0.01 slem cores expansion
//	measure -dataset wiki-vote centrality community
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/trustnet/trustnet/internal/centrality"
	"github.com/trustnet/trustnet/internal/community"
	"github.com/trustnet/trustnet/internal/core"
	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "measure:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("measure", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "edge-list file to measure")
		dataset = fs.String("dataset", "", "registry dataset to measure instead of -in")
		eps     = fs.Float64("eps", 0, "variation distance target (default 1/n)")
		sources = fs.Int("sources", 50, "sampled walk sources for the mixing measurement")
		steps   = fs.Int("steps", 200, "max walk length for the mixing measurement")
		expSrc  = fs.Int("expansion-sources", 0, "sampled BFS cores for expansion (0 = all nodes)")
		specTol = fs.Float64("spectral-tol", 0, "SLEM power-iteration tolerance (default 1e-7)")
		seed    = fs.Int64("seed", 1, "measurement seed")
		shards  = fs.Int("shards", 1, "measure over a node-range-sharded view (results are identical at any shard count)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	what := fs.Args()
	if len(what) == 0 {
		what = []string{"all"}
	}

	g, name, err := loadGraph(*in, *dataset)
	if err != nil {
		return err
	}
	if !graph.IsConnected(g) {
		total := g.NumNodes()
		lcc, kept := graph.LargestComponent(g)
		g = lcc
		fmt.Printf("note: graph disconnected; measuring largest component (%d of %d nodes)\n",
			len(kept), total)
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", *shards)
	}
	if *shards > 1 {
		sg, err := graph.NewSharded(g, *shards)
		if err != nil {
			return err
		}
		g = sg
	}

	rep, err := core.Measure(context.Background(), name, g, core.Config{
		MixingSources:     *sources,
		MixingMaxSteps:    *steps,
		Epsilon:           *eps,
		ExpansionSources:  *expSrc,
		SpectralTolerance: *specTol,
		Seed:              *seed,
	})
	if err != nil {
		return err
	}

	show := map[string]bool{}
	for _, w := range what {
		show[w] = true
	}
	all := show["all"]

	// The canonical topology digest (identical at any shard count) lets
	// operators tie this output to cached experiment artifacts.
	fmt.Printf("graph %s: n=%d m=%d fingerprint=%s\n\n", rep.Name, rep.Nodes, rep.Edges, graph.Fingerprint(g))
	if all || show["slem"] {
		fmt.Printf("SLEM mu = %.6f\n", rep.SLEM)
		fmt.Printf("Sinclair bounds at eps=%.2e: %.1f <= T <= %.1f\n\n",
			rep.Epsilon, rep.Bounds.Lower, rep.Bounds.Upper)
	}
	if all || show["mixing"] {
		if rep.MixedWithinBudget {
			fmt.Printf("sampling-method mixing time T(%.2e) = %d steps (worst of %d sources)\n",
				rep.Epsilon, rep.MixingTime, len(rep.Mixing.Sources))
		} else {
			fmt.Printf("graph did not mix to eps=%.2e within %d steps (final worst TVD %.4f)\n",
				rep.Epsilon, len(rep.Mixing.MaxTVD), rep.Mixing.MaxTVD[len(rep.Mixing.MaxTVD)-1])
		}
		t := report.NewTable("", "walk length", "min TVD", "mean TVD", "max TVD")
		for _, i := range []int{0, 1, 3, 7, 15, 31, 63, 127, 199} {
			if i >= len(rep.Mixing.MeanTVD) {
				break
			}
			if err := t.AddRow(report.Int(i+1),
				report.Float(rep.Mixing.MinTVD[i], 4),
				report.Float(rep.Mixing.MeanTVD[i], 4),
				report.Float(rep.Mixing.MaxTVD[i], 4)); err != nil {
				return err
			}
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if all || show["cores"] {
		fmt.Printf("degeneracy %d; top core: nu=%.3f nu~=%.3f components=%d; mean coreness %.2f\n\n",
			rep.Cores.Degeneracy, rep.Cores.TopCoreNu, rep.Cores.TopCoreNuTilde,
			rep.Cores.TopCoreComponents, rep.Cores.MeanCoreness)
	}
	if all || show["expansion"] {
		fmt.Printf("expansion: min alpha = %.4f, mean alpha over small sets = %.3f (from %d cores)\n",
			rep.Expansion.MinAlpha, rep.Expansion.MeanAlphaSmallSets, rep.Expansion.Result.Sources)
	}
	if show["centrality"] {
		if err := printCentrality(graph.Materialize(g)); err != nil {
			return err
		}
	}
	if show["community"] {
		if err := printCommunity(graph.Materialize(g), *seed); err != nil {
			return err
		}
	}
	return nil
}

// printCentrality reports the top nodes by betweenness, closeness, and
// PageRank (sampled betweenness above 2000 nodes to stay interactive).
func printCentrality(g *graph.Graph) error {
	ctx := context.Background()
	cfg := centrality.Config{}
	if g.NumNodes() > 2000 {
		cfg.Pivots = 500
	}
	bc, err := centrality.Betweenness(ctx, g, cfg)
	if err != nil {
		return err
	}
	cc, err := centrality.Closeness(ctx, g, centrality.Config{})
	if err != nil {
		return err
	}
	pr, err := centrality.PageRank(g, centrality.PageRankConfig{})
	if err != nil {
		return err
	}
	t := report.NewTable("top-5 nodes per centrality", "Rank", "Betweenness", "Closeness", "PageRank")
	topB := centrality.TopK(bc, 5)
	topC := centrality.TopK(cc, 5)
	topP := centrality.TopK(pr, 5)
	for i := 0; i < 5 && i < len(topB); i++ {
		if err := t.AddRow(report.Int(i+1),
			fmt.Sprintf("%d (%.1f)", topB[i], bc[topB[i]]),
			fmt.Sprintf("%d (%.3f)", topC[i], cc[topC[i]]),
			fmt.Sprintf("%d (%.4f)", topP[i], pr[topP[i]])); err != nil {
			return err
		}
	}
	return t.Render(os.Stdout)
}

// printCommunity reports the label-propagation partition summary.
func printCommunity(g *graph.Graph, seed int64) error {
	labels, err := community.LabelPropagation(g, 100, seed)
	if err != nil {
		return err
	}
	sizes := community.Sizes(labels)
	q, err := community.Modularity(g, labels)
	if err != nil {
		return err
	}
	largest := 0
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	fmt.Printf("communities: %d (largest %d of %d nodes), modularity Q = %.3f\n",
		len(sizes), largest, g.NumNodes(), q)
	return nil
}

// loadGraph resolves the input: a registry dataset, or a file whose
// format follows its extension — .tng2 is opened as a zero-copy mmap
// view, .bin/.tng1 as TNG1 binary, anything else as edge-list text.
func loadGraph(in, dataset string) (graph.View, string, error) {
	switch {
	case in != "" && dataset != "":
		return nil, "", fmt.Errorf("use either -in or -dataset, not both")
	case in != "":
		if strings.HasSuffix(in, ".tng2") {
			g, err := graph.OpenMapped(in)
			return g, in, err
		}
		if strings.HasSuffix(in, ".bin") || strings.HasSuffix(in, ".tng1") {
			g, err := graph.LoadBinary(in)
			return g, in, err
		}
		g, err := graph.LoadEdgeList(in)
		return g, in, err
	case dataset != "":
		spec, err := datasets.ByName(dataset)
		if err != nil {
			return nil, "", err
		}
		g, err := spec.Generate()
		return g, dataset, err
	default:
		return nil, "", fmt.Errorf("one of -in or -dataset is required")
	}
}
