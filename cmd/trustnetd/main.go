// Command trustnetd is the long-lived measurement daemon: an HTTP
// service exposing the graph registry, the async measurement queue over
// the typed job layer, the content-addressed artifact cache, /metrics,
// and a self-describing OpenAPI document.
//
// Usage:
//
//	trustnetd -addr :8080 -data out/daemon/data -out out/daemon
//
// With -addr :0 the kernel picks a free port; -addr-file writes the
// bound address to a file so scripts can discover it. SIGTERM (or
// SIGINT) drains: queued measurements finish, in-flight responses
// complete, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"github.com/trustnet/trustnet/internal/trustnetd"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address (\":0\" picks a free port)")
		addrFile      = flag.String("addr-file", "", "write the bound address to this file once listening")
		data          = flag.String("data", "out/daemon/data", "directory holding registered graph files")
		out           = flag.String("out", "out/daemon", "output directory (artifact cache under <out>/cache, job files under <out>/jobs)")
		cacheMaxBytes = flag.Int64("cache-max-bytes", 0, "artifact cache byte cap, oldest evicted first (0 = unbounded)")
		workers       = flag.Int("workers", 2, "measurement worker-pool size")
		queueDepth    = flag.Int("queue-depth", 256, "maximum queued-but-unstarted measurements")
		jobTimeout    = flag.Duration("job-timeout", 10*time.Minute, "per-attempt measurement deadline")
		attempts      = flag.Int("attempts", 2, "retry budget per measurement (transient failures only)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "shutdown budget for queued measurements")
	)
	flag.Parse()

	srv, err := trustnetd.New(trustnetd.Config{
		DataDir:       *data,
		CacheDir:      filepath.Join(*out, "cache"),
		OutDir:        *out,
		CacheMaxBytes: *cacheMaxBytes,
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		JobTimeout:    *jobTimeout,
		MaxAttempts:   *attempts,
		DrainTimeout:  *drainTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = srv.Serve(ctx, *addr, func(bound string) {
		fmt.Printf("trustnetd listening on %s\n", bound)
		if *addrFile != "" {
			if werr := os.WriteFile(*addrFile, []byte(bound), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "trustnetd: write addr file: %v\n", werr)
			}
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("trustnetd drained cleanly")
}
