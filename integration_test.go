// End-to-end integration tests exercising the library the way the cmd
// tools and a downstream user would: generate → persist → reload →
// measure → defend, asserting the paper's qualitative claims hold across
// the full pipeline rather than within single packages.
package trustnet

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"github.com/trustnet/trustnet/internal/core"
	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/digraph"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/spectral"
	"github.com/trustnet/trustnet/internal/sybil"
	"github.com/trustnet/trustnet/internal/sybil/gatekeeper"
	"github.com/trustnet/trustnet/internal/walk"
)

// TestPipelineGeneratePersistMeasureDefend drives the full round trip.
func TestPipelineGeneratePersistMeasureDefend(t *testing.T) {
	// 1. Generate a dataset stand-in and persist it.
	spec, err := datasets.ByName("rice-grad")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rice.txt")
	if err := graph.SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}

	// 2. Reload and verify identity.
	g2, err := graph.LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed the graph: %v vs %v", g2, g)
	}

	// 3. Measure the reloaded graph.
	rep, err := core.Measure(context.Background(), "rice", g2, core.Config{
		Seed: 1, MixingSources: 15, ExpansionSources: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.MixedWithinBudget {
		t.Fatal("rice-grad stand-in should mix within budget")
	}

	// 4. The measured properties license the defense: run GateKeeper and
	// check the guarantee materializes.
	a, err := sybil.Inject(g2, sybil.AttackConfig{SybilNodes: 100, AttackEdges: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := gatekeeper.Run(a, 0, gatekeeper.Config{Distributers: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := out.Accepted(0.2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sybil.Evaluate(a, acc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.HonestAcceptRate() < 0.9 {
		t.Errorf("honest acceptance %v on a measured-good graph, want >= 0.9", m.HonestAcceptRate())
	}
	if m.SybilsPerAttackEdge() > 5 {
		t.Errorf("sybils per edge %v, want small on a measured-good graph", m.SybilsPerAttackEdge())
	}
}

// TestDirectedToUndirectedPipeline symmetrizes a directed crawl the two
// ways and confirms the mutual graph is the more conservative (sparser,
// slower-mixing) model, as the directed-mixing companion work reports.
func TestDirectedToUndirectedPipeline(t *testing.T) {
	// Synthesize a directed endorsement-style graph: take a BA graph and
	// orient each edge from the younger (higher-ID) node to the older,
	// then add reverse arcs for 30% of them.
	base, err := gen.BarabasiAlbert(500, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	b := digraph.NewBuilder(base.NumNodes())
	i := 0
	for _, e := range base.Edges() {
		young, old := e.V, e.U // canonical edges have U < V
		if err := b.AddArc(young, old); err != nil {
			t.Fatal(err)
		}
		if i%10 < 3 {
			if err := b.AddArc(old, young); err != nil {
				t.Fatal(err)
			}
		}
		i++
	}
	dg := b.Build()
	if r := dg.Reciprocity(); r < 0.2 || r > 0.7 {
		t.Fatalf("reciprocity = %v, construction broken", r)
	}
	union, err := dg.Symmetrize(digraph.SymmetrizeUnion)
	if err != nil {
		t.Fatal(err)
	}
	mutual, err := dg.Symmetrize(digraph.SymmetrizeMutual)
	if err != nil {
		t.Fatal(err)
	}
	if mutual.NumEdges() >= union.NumEdges() {
		t.Fatalf("mutual %d >= union %d edges", mutual.NumEdges(), union.NumEdges())
	}
	// Union graph equals the original undirected BA graph.
	if union.NumEdges() != base.NumEdges() {
		t.Errorf("union edges %d != base %d", union.NumEdges(), base.NumEdges())
	}
	// Mixing: measure both models' SLEM on their largest components.
	muOf := func(g *graph.Graph) float64 {
		if !graph.IsConnected(g) {
			g, _ = graph.LargestComponent(g)
		}
		r, err := spectral.SLEM(g, spectral.Config{Tolerance: 1e-6, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return r.SLEM
	}
	if muU, muM := muOf(union), muOf(mutual); muM < muU {
		t.Errorf("mutual model mu %v < union %v; dropping edges should not speed mixing", muM, muU)
	}
}

// TestSpectralSamplingConsistencyAcrossRegistry cross-validates the two
// mixing measurements over the whole dataset registry: the ordering by
// SLEM must agree with the ordering by sampled mixing behavior.
func TestSpectralSamplingConsistencyAcrossRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("registry-wide consistency check is slow")
	}
	cache := &datasets.Cache{}
	type point struct {
		mu   float64
		tvd  float64 // worst-source TVD after 60 steps
		name string
	}
	var points []point
	for _, name := range []string{"wiki-vote", "epinion", "rice-grad", "physics-1", "physics-2", "dblp"} {
		g, err := cache.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := spectral.SLEM(g, spectral.Config{Tolerance: 1e-6, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		mr, err := walk.MeasureMixing(context.Background(), g, walk.MixingConfig{MaxSteps: 60, Sources: 10, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, point{mu: sr.SLEM, tvd: mr.MaxTVD[59], name: name})
	}
	for i := range points {
		for j := range points {
			if points[i].mu < points[j].mu-0.1 && points[i].tvd > points[j].tvd+0.1 {
				t.Errorf("ordering disagreement: %s (mu=%.3f, tvd=%.3f) vs %s (mu=%.3f, tvd=%.3f)",
					points[i].name, points[i].mu, points[i].tvd,
					points[j].name, points[j].mu, points[j].tvd)
			}
		}
	}
}

// TestEpsilonSensitivity confirms T(ε) is monotone in ε, a basic sanity
// invariant of the Eq. 2 measurement surfaced through the suite.
func TestEpsilonSensitivity(t *testing.T) {
	g, err := gen.BarabasiAlbert(400, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := walk.MeasureMixing(context.Background(), g, walk.MixingConfig{MaxSteps: 120, Sources: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for _, eps := range []float64{0.5, 0.2, 0.1, 0.01, 0.001} {
		tm, ok := mr.MixingTime(eps)
		if !ok {
			break
		}
		if tm < prev {
			t.Errorf("T(%v) = %d < T at larger eps %d", eps, tm, prev)
		}
		prev = tm
	}
	if prev == 0 {
		t.Fatal("no epsilon level reached; measurement broken")
	}
	if math.IsNaN(mr.MeanTVD[0]) {
		t.Fatal("NaN in mixing curve")
	}
}
