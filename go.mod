module github.com/trustnet/trustnet

go 1.22
