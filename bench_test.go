// Package trustnet's root benchmark harness: one benchmark per table and
// figure of the paper (regenerating the artifact through the experiment
// runners), plus ablation benchmarks for the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks use the runners' Quick mode so a full sweep
// stays laptop-sized; `go run ./cmd/experiments` produces the full-scale
// artifacts.
package trustnet

import (
	"context"
	"testing"

	"github.com/trustnet/trustnet/internal/datasets"
	"github.com/trustnet/trustnet/internal/expansion"
	"github.com/trustnet/trustnet/internal/experiments"
	"github.com/trustnet/trustnet/internal/gen"
	"github.com/trustnet/trustnet/internal/graph"
	"github.com/trustnet/trustnet/internal/spectral"
	"github.com/trustnet/trustnet/internal/sybil"
	"github.com/trustnet/trustnet/internal/sybil/gatekeeper"
	"github.com/trustnet/trustnet/internal/sybil/sybillimit"
	"github.com/trustnet/trustnet/internal/walk"
)

// benchOpts builds fresh quick options per benchmark (the cache is shared
// across iterations inside one benchmark, mirroring how the experiment
// binary shares it across runners).
func benchOpts() experiments.Options {
	return experiments.Options{Quick: true, Seed: 7, Cache: &datasets.Cache{}}
}

func BenchmarkTableI(b *testing.B) {
	opts := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableI(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	opts := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	opts := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	opts := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableII(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	opts := benchOpts()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(ctx, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	opts := benchOpts()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(ctx, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	opts := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrossProperty(b *testing.B) {
	opts := benchOpts()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CrossProperty(ctx, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFutureWorkDynamic(b *testing.B) {
	opts := benchOpts()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FutureWorkDynamic(ctx, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFutureWorkModulated(b *testing.B) {
	opts := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FutureWorkModulated(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttackerModels(b *testing.B) {
	opts := benchOpts()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AttackerModels(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBetweennessDistribution(b *testing.B) {
	opts := benchOpts()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BetweennessDistribution(ctx, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBridgeSweep(b *testing.B) {
	opts := benchOpts()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BridgeSweep(ctx, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---

// benchGraph builds the shared medium test graph.
func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.BarabasiAlbert(2000, 6, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// Lazy vs non-lazy walks: the lazy walk is aperiodicity-safe but needs
// roughly twice the steps for the same TVD.
func BenchmarkAblationLazyWalk(b *testing.B) {
	g := benchGraph(b)
	for _, lazy := range []bool{false, true} {
		name := "plain"
		if lazy {
			name = "lazy"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := walk.MeasureMixing(context.Background(), g, walk.MixingConfig{
					MaxSteps: 40, Sources: 8, Lazy: lazy, Seed: 2,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Dense distribution push vs sparse trajectory sampling: the exact dense
// push costs O(m) per step regardless of support; the Monte-Carlo
// endpoint estimate trades accuracy for speed on large graphs.
func BenchmarkAblationSparsePush(b *testing.B) {
	g := benchGraph(b)
	b.Run("dense-exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := walk.NewDistribution(g, 0, false)
			if err != nil {
				b.Fatal(err)
			}
			for s := 0; s < 20; s++ {
				d.Step()
			}
		}
	})
	b.Run("monte-carlo", func(b *testing.B) {
		b.ReportAllocs()
		w := walk.NewWalker(g, 3)
		for i := 0; i < b.N; i++ {
			for t := 0; t < 2000; t++ {
				if _, err := w.Endpoint(0, 20); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// Spectral bound vs full sampling measurement: the power iteration is the
// cheap worst-case bound, the sampling method the expensive per-source
// picture — the paper uses both.
func BenchmarkAblationSpectralVsSampling(b *testing.B) {
	g := benchGraph(b)
	b.Run("spectral", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := spectral.SLEM(g, spectral.Config{Tolerance: 1e-6, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sampling", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := walk.MeasureMixing(context.Background(), g, walk.MixingConfig{
				MaxSteps: 60, Sources: 20, Seed: 1,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Exact all-sources expansion vs sampled sources: the paper's O(nm)
// measurement vs the estimate used on larger graphs.
func BenchmarkAblationSampledExpansion(b *testing.B) {
	g := benchGraph(b)
	ctx := context.Background()
	b.Run("all-sources", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := expansion.Measure(ctx, g, expansion.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sampled-100", func(b *testing.B) {
		b.ReportAllocs()
		srcs, err := expansion.SampledSources(g, 100, 1)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := expansion.Measure(ctx, g, expansion.Config{Sources: srcs}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// GateKeeper vs SybilLimit on identical attack instances: the ticket
// distribution is near-linear per distributer; SybilLimit pays for
// r = Θ(√m) routing instances.
func BenchmarkAblationDefenseComparison(b *testing.B) {
	g := benchGraph(b)
	a, err := sybil.Inject(g, sybil.AttackConfig{SybilNodes: 200, AttackEdges: 5, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("gatekeeper", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := gatekeeper.Run(a, 0, gatekeeper.Config{Distributers: 50, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := out.Accepted(0.2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sybillimit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sybillimit.Run(a, 0, sybillimit.Config{Seed: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
