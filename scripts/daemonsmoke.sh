#!/usr/bin/env bash
# Daemon smoke: trustnetd must serve the measurement pipeline as a
# long-lived service with a real cache contract. Start the daemon on an
# ephemeral port, synthesize a 10^4-node graph through the streaming
# generator endpoint, run the mixing measurement twice with identical
# parameters: the first run executes a kernel, the second must be a pure
# cache replay (jobs.run.executed unchanged on /metrics) with a
# byte-identical artifact body. SIGTERM must drain cleanly to exit 0.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

bin="$tmp/trustnetd"
go build -o "$bin" ./cmd/trustnetd

echo "== starting trustnetd on an ephemeral port =="
"$bin" -addr 127.0.0.1:0 -addr-file "$tmp/addr" \
    -data "$tmp/data" -out "$tmp/out" -workers 2 \
    > "$tmp/daemon.log" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 100); do
    [ -s "$tmp/addr" ] && break
    sleep 0.1
done
if [ ! -s "$tmp/addr" ]; then
    echo "daemonsmoke: daemon never wrote its address" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
base="http://$(cat "$tmp/addr")"
echo "   daemon at $base"

# jfield FILE KEY prints one top-level field of a JSON document.
jfield() {
    python3 -c 'import json,sys; print(json.load(open(sys.argv[1]))[sys.argv[2]])' "$1" "$2"
}
# executed prints the current jobs.run.executed counter from /metrics.
executed() {
    curl -sf "$base/metrics" | python3 -c \
        'import json,sys; print(json.load(sys.stdin)["counters"].get("jobs.run.executed", 0))'
}

echo "== generating a 10^4-node graph through the streaming endpoint =="
curl -sf -X POST "$base/v1/graphs/smoke/generate" \
    -d '{"model":"ba","nodes":10000,"attach":6,"seed":42}' > "$tmp/graph.json"
nodes=$(jfield "$tmp/graph.json" nodes)
if [ "$nodes" != "10000" ]; then
    echo "daemonsmoke: generated graph has $nodes nodes, want 10000" >&2
    exit 1
fi
echo "   fingerprint $(jfield "$tmp/graph.json" fingerprint)"

echo "== OpenAPI document is served =="
curl -sf "$base/v1/openapi.json" | python3 -c \
    'import json,sys; d=json.load(sys.stdin); assert "/v1/jobs" in d["paths"], d["paths"].keys()'

run_mixing() { # run_mixing OUT_PREFIX -> writes status + artifact files
    curl -sf -X POST "$base/v1/jobs" \
        -d '{"graph":"smoke","job":"mixing","config":{"seed":3,"sources":8,"max_steps":60}}' \
        > "$tmp/$1.accepted.json"
    local id
    id=$(jfield "$tmp/$1.accepted.json" id)
    for _ in $(seq 1 60); do
        curl -sf "$base/v1/jobs/$id?wait=5s" > "$tmp/$1.status.json"
        state=$(jfield "$tmp/$1.status.json" state)
        if [ "$state" = done ] || [ "$state" = failed ]; then
            break
        fi
    done
    if [ "$(jfield "$tmp/$1.status.json" state)" != done ]; then
        echo "daemonsmoke: $1 mixing run did not finish: $(cat "$tmp/$1.status.json")" >&2
        exit 1
    fi
    curl -sf "$base/v1/jobs/$id/artifact" > "$tmp/$1.artifact.json"
}

echo "== first mixing run (must execute) =="
exec_before=$(executed)
run_mixing first
exec_after_first=$(executed)
if [ "$(jfield "$tmp/first.status.json" cached)" != "False" ]; then
    echo "daemonsmoke: cold run claimed a cache hit" >&2
    exit 1
fi
if [ "$exec_after_first" -le "$exec_before" ]; then
    echo "daemonsmoke: first run executed no kernel ($exec_before -> $exec_after_first)" >&2
    exit 1
fi

echo "== second identical run (must replay from cache) =="
run_mixing second
exec_after_second=$(executed)
if [ "$(jfield "$tmp/second.status.json" cached)" != "True" ]; then
    echo "daemonsmoke: second identical run was not served from cache" >&2
    exit 1
fi
if [ "$exec_after_second" != "$exec_after_first" ]; then
    echo "daemonsmoke: cache replay executed a kernel ($exec_after_first -> $exec_after_second)" >&2
    exit 1
fi
cmp "$tmp/first.artifact.json" "$tmp/second.artifact.json"
echo "   replay byte-identical, jobs.run.executed unchanged at $exec_after_second"

echo "== SIGTERM drains cleanly =="
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
daemon_pid=""
if [ "$status" != 0 ]; then
    echo "daemonsmoke: daemon exited $status on SIGTERM" >&2
    cat "$tmp/daemon.log" >&2
    exit 1
fi
grep -q "drained cleanly" "$tmp/daemon.log"

echo "daemonsmoke: OK"
