// Command godoclint fails when a package directory contains exported
// identifiers without godoc comments. scripts/doclint.sh runs it over
// the packages whose exported surface is an API contract other layers
// program against (incremental, resilience, obs); the package-comment
// and graph.View lints in that script cover the rest of the tree.
//
// Usage:
//
//	godoclint DIR...
//
// An exported func, method, type, const, var, or interface method must
// carry a doc comment — on the declaration itself or, for grouped
// const/var specs, on the enclosing group. Test files are skipped.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: godoclint DIR...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		n, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "godoclint: %s: %v\n", dir, err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "godoclint: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// lintDir parses one package directory (tests excluded) and reports
// every undocumented exported identifier on stderr, returning the count.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Fprintf(os.Stderr, "%s:%d: exported %s %s is undocumented\n", p.Filename, p.Line, kind, name)
		bad++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return bad, nil
}

// lintGenDecl checks the specs of a type/const/var declaration. A doc
// comment on the group covers all its specs (the idiomatic form for
// enumerated constants); otherwise each exported spec needs its own.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	kind := d.Tok.String()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
				report(s.Pos(), kind, s.Name.Name)
			}
			if it, ok := s.Type.(*ast.InterfaceType); ok && s.Name.IsExported() {
				lintInterface(it, s.Name.Name, report)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil || d.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}

// lintInterface checks that every named method of an exported
// interface carries a doc comment — the method set is the contract.
func lintInterface(it *ast.InterfaceType, typeName string, report func(token.Pos, string, string)) {
	for _, m := range it.Methods.List {
		if len(m.Names) == 0 {
			continue // embedded interface
		}
		for _, name := range m.Names {
			if name.IsExported() && m.Doc == nil && m.Comment == nil {
				report(name.Pos(), "interface method", typeName+"."+name.Name)
			}
		}
	}
}
