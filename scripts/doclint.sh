#!/bin/sh
# doclint: fail if any package under ./internal/... or ./cmd/... lacks a
# package-level doc comment (the paper-equation + complexity contract of
# ISSUE 2; rendered by `go doc <pkg>`). CI runs this as the doc-lint step.
set -eu

missing=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./internal/... ./cmd/...)
if [ -n "$missing" ]; then
    echo "doclint: packages missing a package comment:" >&2
    echo "$missing" >&2
    exit 1
fi
echo "doclint: all packages documented"
