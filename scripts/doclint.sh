#!/bin/sh
# doclint: fail if any package under ./internal/... or ./cmd/... lacks a
# package-level doc comment (the paper-equation + complexity contract of
# ISSUE 2; rendered by `go doc <pkg>`), or if a measurement package grows
# a new exported entry point that takes *graph.Graph instead of the
# graph.View it should accept. CI runs this as the doc-lint step.
set -eu

missing=$(go list -f '{{if not .Doc}}{{.ImportPath}}{{end}}' ./internal/... ./cmd/...)
if [ -n "$missing" ]; then
    echo "doclint: packages missing a package comment:" >&2
    echo "$missing" >&2
    exit 1
fi
echo "doclint: all packages documented"

# View lint: measurement entry points accept the read-only graph.View, so
# every zero-copy view (masked, induced, prefix) can be measured without a
# CSR rebuild. A *graph.Graph parameter on a new exported function in a
# measurement package reintroduces the rebuild-per-variant tax; kernels is
# exempt (batched kernels are CSR-only by design, reached via
# graph.Materialize), as are methods and unexported helpers.
viewbad=""
for pkg in internal/walk internal/expansion internal/spectral internal/kcore \
           internal/centrality internal/community; do
    hits=$(grep -n '^func [A-Z][A-Za-z0-9]*(' "$pkg"/*.go 2>/dev/null \
        | grep -v '_test\.go:' \
        | sed 's/) (.*//;s/).*//' \
        | grep '\*graph\.Graph' || true)
    if [ -n "$hits" ]; then
        viewbad="$viewbad$pkg: $hits
"
    fi
done
if [ -n "$viewbad" ]; then
    echo "doclint: exported measurement entry points must take graph.View, not *graph.Graph:" >&2
    printf '%s' "$viewbad" >&2
    exit 1
fi
echo "doclint: measurement entry points accept graph.View"

# Godoc lint: every exported identifier in the packages whose exported
# surface other layers program against must carry a doc comment
# (scripts/godoclint, an AST-level check; the package-comment lint above
# only guarantees the package clause).
go run ./scripts/godoclint internal/incremental internal/resilience internal/obs internal/jobs internal/trustnetd
echo "doclint: exported identifiers documented (incremental, resilience, obs, jobs, trustnetd)"
