#!/usr/bin/env bash
# Crash-recovery smoke: a tight per-job timeout must cut the figure1
# measurement short (nonzero exit, partial artifacts), leave valid
# checkpoints behind, and a -resume rerun must complete with artifacts
# bit-identical to a run that was never interrupted. A second -resume
# pass must then skip the job entirely from its done marker.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
bin="$tmp/experiments"
go build -o "$bin" ./cmd/experiments

ref="$tmp/ref"
crash="$tmp/crash"

echo "== reference run (uninterrupted) =="
"$bin" -run figure1 -quick -seed 1 -out "$ref" > "$tmp/ref.log"

echo "== interrupted run (150ms budget, best-effort) =="
if "$bin" -run figure1 -quick -seed 1 -timeout 150ms -best-effort -out "$crash" > "$tmp/crash.log" 2>&1; then
    echo "crashsmoke: the timeout-cut run exited 0, want nonzero" >&2
    cat "$tmp/crash.log" >&2
    exit 1
fi

ckpts=("$crash"/ckpt/*.json)
if [ ! -e "${ckpts[0]}" ]; then
    echo "crashsmoke: the interrupted run left no checkpoints" >&2
    cat "$tmp/crash.log" >&2
    exit 1
fi
echo "== validating ${#ckpts[@]} checkpoint(s) =="
go run ./scripts/jsonlint -want-schema trustnet/checkpoint/v1 "${ckpts[@]}"
go run ./scripts/jsonlint -want-schema trustnet/metrics/v1 "$crash/METRICS.json"

echo "== resumed run =="
"$bin" -run figure1 -quick -seed 1 -resume -out "$crash" > "$tmp/resume.log"

echo "== comparing artifacts against the uninterrupted reference =="
for f in figure1a.csv figure1b.csv figure1-sources.csv; do
    cmp "$ref/$f" "$crash/$f"
done

echo "== rerun must skip the completed job from its done marker =="
"$bin" -run figure1 -quick -seed 1 -resume -out "$crash" > "$tmp/skip.log"
grep -q "SKIP figure1" "$tmp/skip.log"

echo "crashsmoke: OK (interrupted run resumed to bit-identical artifacts)"
