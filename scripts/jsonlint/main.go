// Command jsonlint validates that each argument file parses as JSON —
// the cheap integrity check the crash-recovery smoke runs over the
// checkpoints an interrupted run leaves behind (a torn write would fail
// to parse; resilience.WriteFileAtomic exists to make that impossible).
// With -want-schema, each document must also be an object whose
// "schema" field equals the given value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	wantSchema := flag.String("want-schema", "", "require each document's schema field to equal this value")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: jsonlint [-want-schema S] file.json...")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		if err := lint(path, *wantSchema); err != nil {
			fmt.Fprintf(os.Stderr, "jsonlint: %s: %v\n", path, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func lint(path, wantSchema string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if wantSchema != "" {
		var schema string
		if err := json.Unmarshal(doc["schema"], &schema); err != nil {
			return fmt.Errorf("schema field: %w", err)
		}
		if schema != wantSchema {
			return fmt.Errorf("schema %q, want %q", schema, wantSchema)
		}
	}
	return nil
}
