#!/usr/bin/env bash
# Cache smoke: the content-addressed artifact cache must turn an
# unchanged rerun into a pure replay. Run tableI twice into the same
# -out: the second run must log a CACHED line for every selected job,
# produce byte-identical artifacts, and its METRICS window must show
# zero job executions. A -no-cache rerun must recompute, still
# byte-identically.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
bin="$tmp/experiments"
go build -o "$bin" ./cmd/experiments

out="$tmp/out"

echo "== first run (cold cache) =="
"$bin" -run tableI -quick -seed 1 -out "$out" > "$tmp/first.log"
if grep -q "CACHED tableI" "$tmp/first.log"; then
    echo "cachesmoke: cold run claimed a cache hit" >&2
    exit 1
fi
cp "$out/tableI.txt" "$tmp/tableI.first.txt"

entries=("$out"/cache/*.json)
if [ ! -e "${entries[0]}" ]; then
    echo "cachesmoke: first run left no cache entries" >&2
    exit 1
fi
echo "== validating ${#entries[@]} cache entrie(s) =="
go run ./scripts/jsonlint -want-schema trustnet/artifact/v1 "${entries[@]}"

echo "== second run (must be an all-hits replay) =="
"$bin" -run tableI -quick -seed 1 -out "$out" > "$tmp/second.log"
grep -q "CACHED tableI" "$tmp/second.log"
cmp "$out/tableI.txt" "$tmp/tableI.first.txt"

echo "== METRICS window of the replay must show zero executions =="
python3 - "$out/METRICS.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
[job] = doc["jobs"]
c = job["metrics"]["counters"]
assert c.get("jobs.cache.hits", 0) == 1, c
assert c.get("jobs.run.executed", 0) == 0, c
assert c.get("spectral.slem.iterations", 0) == 0, c
EOF

echo "== -no-cache rerun must recompute, byte-identically =="
"$bin" -run tableI -quick -seed 1 -no-cache -out "$out" > "$tmp/nocache.log"
if grep -q "CACHED tableI" "$tmp/nocache.log"; then
    echo "cachesmoke: -no-cache still replayed from cache" >&2
    exit 1
fi
cmp "$out/tableI.txt" "$tmp/tableI.first.txt"

echo "== corrupted entry must fall back to recompute =="
for e in "${entries[@]}"; do echo "garbage" > "$e"; done
"$bin" -run tableI -quick -seed 1 -out "$out" > "$tmp/corrupt.log"
if grep -q "CACHED tableI" "$tmp/corrupt.log"; then
    echo "cachesmoke: corrupted entry was replayed" >&2
    exit 1
fi
cmp "$out/tableI.txt" "$tmp/tableI.first.txt"

echo "== cache stats =="
mkdir -p out
{
    echo "cache entries and sizes after the smoke sequence:"
    ls -l "$out/cache"
    du -sb "$out/cache"
} | tee out/CACHE_STATS.txt

echo "cachesmoke: OK (second run replayed byte-identical artifacts with zero executions)"
