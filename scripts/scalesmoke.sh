#!/usr/bin/env bash
# Scale smoke: stream a 10^6-node preferential-attachment graph straight
# to a TNG2 image in bounded memory (GOMEMLIMIT holds the generator plus
# the external-sort CSR writer well under the in-RAM graph size), mmap it
# back, and run the measurement suite on the mapped view monolithic and
# through a 4-shard ShardedGraph. The two reports must be byte-identical
# — the determinism contract extended to the scale substrate.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
gengraph="$tmp/gengraph"
measure="$tmp/measure"
go build -o "$gengraph" ./cmd/gengraph
go build -o "$measure" ./cmd/measure

echo "== streaming 10^6-node BA graph to TNG2 (GOMEMLIMIT=512MiB) =="
GOMEMLIMIT=512MiB "$gengraph" -model ba -n 1000000 -param 8 -seed 1 \
    -stream -out "$tmp/ba.tng2" | tee "$tmp/gen.log"
grep -q "1000000 nodes" "$tmp/gen.log"

echo "== measuring the mapped view: monolithic vs 4 shards =="
# Capped measurement knobs: the smoke exercises the substrate end to end,
# not the full paper protocol (that is cmd/experiments' job).
args=(-in "$tmp/ba.tng2" -seed 1 -sources 8 -steps 10 -expansion-sources 64 -spectral-tol 1e-4)
GOMEMLIMIT=2GiB "$measure" "${args[@]}" -shards 1 all > "$tmp/mono.txt"
GOMEMLIMIT=2GiB "$measure" "${args[@]}" -shards 4 all > "$tmp/shard.txt"

echo "== comparing reports =="
if ! cmp "$tmp/mono.txt" "$tmp/shard.txt"; then
    echo "scalesmoke: sharded report diverged from monolithic:" >&2
    diff "$tmp/mono.txt" "$tmp/shard.txt" >&2 || true
    exit 1
fi
grep -q "n=1000000" "$tmp/mono.txt"

echo "scalesmoke: OK (10^6-node graph streamed, mapped, measured; sharded report byte-identical)"
